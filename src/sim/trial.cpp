#include "sim/trial.hpp"

#include <chrono>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "metrics/ber.hpp"
#include "rf/chain.hpp"
#include "rf/channel.hpp"
#include "rf/channels/registry.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rx/mother/mother_rx.hpp"

namespace ofdm::sim {

struct LinkRunner::State {
  const ScenarioDeck& deck;
  PointSpec point;
  core::Transmitter tx;
  rx::MotherReceiver rx;
  rx::MotherReceiver ref_rx;  ///< equalizer-free, for clean reference tones
  std::size_t payload_bits = 0;
  cvec channel_taps;  ///< multipath / twisted-pair FIR, empty for AWGN

  // Batch-path scratch: reused across the trials of one run_trials call.
  core::Transmitter::Burst burst_scratch;
  cvec rx_scratch;

  TrialResult run_one(std::size_t trial_index,
                      core::Transmitter::Burst& burst, cvec& rx_samples);

  State(const ScenarioDeck& d, const PointSpec& p)
      : deck(d),
        point(p),
        tx(d.standards.at(p.standard_index).params),
        rx(d.standards.at(p.standard_index).params),
        ref_rx(d.standards.at(p.standard_index).params) {
    payload_bits = d.payload_bits > 0 ? d.payload_bits
                                      : tx.recommended_payload_bits();
    OFDM_REQUIRE(payload_bits > 0,
                 "sim: standard '" +
                     d.standards.at(p.standard_index).token +
                     "' yields an empty payload");
    rx.set_mode(d.rx_modes.at(p.rx_index).mode);
    rx.set_pilot_tracking(d.rx_pilot_tracking);
    rx.set_demap(d.rx_soft ? mapping::DemapMode::kSoft
                           : mapping::DemapMode::kHard);

    const ChannelPreset& ch = d.channels.at(p.channel_index);
    switch (ch.kind) {
      case ChannelPreset::Kind::kAwgn:
        break;
      case ChannelPreset::Kind::kMultipath:
        // One static realization per campaign: every SNR point of a
        // curve sees the same channel, so the curve isolates SNR.
        channel_taps = rf::exponential_pdp_taps(
            ch.rms_delay_samples, ch.n_taps, ch.taps_seed);
        break;
      case ChannelPreset::Kind::kTwistedPair:
        channel_taps =
            rf::twisted_pair_taps(ch.cutoff_norm, ch.attenuation_db);
        break;
      case ChannelPreset::Kind::kStandard:
        // Built per trial in run_one: standard presets are ergodic,
        // each trial draws a fresh seeded realization so the curve
        // averages over the fading distribution.
        break;
    }
  }
};

LinkRunner::LinkRunner(const ScenarioDeck& deck, const PointSpec& point)
    : state_(std::make_unique<State>(deck, point)) {}
LinkRunner::~LinkRunner() = default;
LinkRunner::LinkRunner(LinkRunner&&) noexcept = default;
LinkRunner& LinkRunner::operator=(LinkRunner&&) noexcept = default;

std::size_t LinkRunner::payload_bits() const {
  return state_->payload_bits;
}

TrialResult LinkRunner::run_trial(std::size_t trial_index) {
  core::Transmitter::Burst burst;
  cvec rx_samples;
  return state_->run_one(trial_index, burst, rx_samples);
}

std::size_t LinkRunner::run_trials(std::size_t first_trial,
                                   std::span<TrialResult> results,
                                   const CancelToken* cancel) {
  State& s = *state_;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (cancel != nullptr && cancel->stop_requested()) return i;
    results[i] =
        s.run_one(first_trial + i, s.burst_scratch, s.rx_scratch);
  }
  return results.size();
}

TrialResult LinkRunner::State::run_one(std::size_t trial_index,
                                       core::Transmitter::Burst& burst,
                                       cvec& rx_samples) {
  const auto t0 = std::chrono::steady_clock::now();
  State& s = *this;
  const ScenarioDeck& d = s.deck;

  // Everything stochastic in this trial flows from one substream.
  Rng rng = Rng::substream(d.seed, s.point.index, trial_index);
  const bitvec payload = rng.bits(s.payload_bits);
  const std::uint64_t phase_noise_seed = rng.next_u64();
  const std::uint64_t awgn_seed = rng.next_u64();
  // Drawn last (and only for standard presets) so decks without one
  // keep their historical trial streams bit-for-bit.
  const ChannelPreset& ch = d.channels.at(s.point.channel_index);
  std::uint64_t channel_seed = 0;
  if (ch.kind == ChannelPreset::Kind::kStandard) {
    channel_seed = rng.next_u64() ^ ch.channel_seed;
  }

  s.tx.modulate_into(payload, burst);

  // SNR is defined against the transmitted burst's average power (the
  // channel presets are unit-average-power, so this is also the mean
  // receive signal power up to the channel's realization).
  double sig_power = 0.0;
  for (const cplx& x : burst.samples) sig_power += std::norm(x);
  sig_power /= static_cast<double>(burst.samples.size());

  rf::Chain chain;
  if (d.pa_enabled) {
    chain.add<rf::Gain>(-d.pa_backoff_db);
    chain.add<rf::RappPa>(d.pa_smoothness, 1.0);
    chain.add<rf::Gain>(d.pa_backoff_db);
  }
  if (d.phase_noise_hz > 0.0) {
    chain.add<rf::PhaseNoise>(
        d.phase_noise_hz,
        d.standards.at(s.point.standard_index).params.sample_rate,
        phase_noise_seed);
  }
  if (!s.channel_taps.empty()) {
    chain.add<rf::MultipathChannel>(s.channel_taps);
  }
  if (ch.kind == ChannelPreset::Kind::kStandard) {
    rf::channels::MakeOptions opts;
    opts.sample_rate =
        d.standards.at(s.point.standard_index).params.sample_rate;
    opts.seed = channel_seed;
    opts.doppler_scale = ch.doppler_scale;
    chain.add_ptr(rf::channels::make_preset(ch.token, opts));
  }
  const double noise_power =
      rf::snr_to_noise_power(sig_power, s.point.snr_db);
  chain.add<rf::AwgnChannel>(noise_power, awgn_seed);

  chain.process(burst.samples, rx_samples);

  if (d.rx_equalize) {
    s.rx.set_equalizer(s.rx.estimate_equalizer(rx_samples));
  } else {
    s.rx.clear_equalizer();
  }
  // Normalize soft LLRs by the true tone-domain noise floor (the
  // max-log Viterbi is scale-invariant, so coded decisions don't move;
  // anything consuming absolute LLRs sees calibrated values).
  if (s.rx.soft_path_active()) {
    s.rx.set_noise_from_sample_variance(noise_power);
  }
  const auto decoded = s.rx.demodulate(rx_samples, payload.size());

  TrialResult r;
  metrics::BerResult b;
  if (d.rx_modes.at(s.point.rx_index).mode == rx::RxMode::kUncoded) {
    // Pre-FEC channel BER: the raw demapped stream (symbol padding
    // included) against the transmitter's exact coded reference.
    const bitvec coded_ref = s.tx.encode_payload(payload);
    b = metrics::ber(coded_ref, decoded.raw_bits);
  } else {
    b = metrics::ber(payload, decoded.payload);
  }
  r.bits = b.bits;
  r.errors = b.errors;

  if (d.measure_evm) {
    const auto ref_tones =
        s.ref_rx.extract_data_tones(burst.samples, burst.data_symbols);
    const auto tones =
        s.rx.extract_data_tones(rx_samples, burst.data_symbols);
    for (std::size_t sym = 0; sym < tones.size(); ++sym) {
      const cvec& a = tones[sym];
      const cvec& b2 = ref_tones[sym];
      const std::size_t n = std::min(a.size(), b2.size());
      for (std::size_t i = 0; i < n; ++i) {
        r.evm_err2 += std::norm(a[i] - b2[i]);
        r.evm_ref2 += std::norm(b2[i]);
      }
    }
  }

  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

}  // namespace ofdm::sim
