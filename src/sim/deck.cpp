#include "sim/deck.hpp"

#include <bit>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "core/profiles.hpp"
#include "rf/channels/registry.hpp"

namespace ofdm::sim {

namespace {

// Numeric wrappers mirroring core/params_io: a scenario deck is user
// input, so every malformed value surfaces as a ConfigError naming the
// field instead of a bare std::sto* exception.

std::uint64_t parse_u64(const std::string& field, const std::string& s) {
  try {
    OFDM_REQUIRE(s.find('-') == std::string::npos,
                 "sim_deck: " + field + " must be non-negative, got '" + s +
                     "'");
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos, 0);
    OFDM_REQUIRE(pos == s.size(),
                 "sim_deck: trailing junk in " + field + ": '" + s + "'");
    return static_cast<std::uint64_t>(v);
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    throw ConfigError("sim_deck: bad integer for " + field + ": '" + s +
                      "'");
  }
}

double parse_double(const std::string& field, const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    OFDM_REQUIRE(pos == s.size(),
                 "sim_deck: trailing junk in " + field + ": '" + s + "'");
    return v;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    throw ConfigError("sim_deck: bad number for " + field + ": '" + s +
                      "'");
  }
}

bool parse_bool(const std::string& field, const std::string& s) {
  return parse_u64(field, s) != 0;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

core::WlanRate wlan_rate_from(const std::string& field,
                              const std::string& v) {
  if (v == "6") return core::WlanRate::k6;
  if (v == "9") return core::WlanRate::k9;
  if (v == "12") return core::WlanRate::k12;
  if (v == "18") return core::WlanRate::k18;
  if (v == "24") return core::WlanRate::k24;
  if (v == "36") return core::WlanRate::k36;
  if (v == "48") return core::WlanRate::k48;
  if (v == "54") return core::WlanRate::k54;
  throw ConfigError("sim_deck: " + field + ": unknown WLAN rate '" + v +
                    "' (expect 6|9|12|18|24|36|48|54)");
}

StandardSpec standard_from_token(const std::string& token) {
  // "+fec" suffix: overlay the reference FEC (profiles.hpp) on a
  // standard whose default profile ships uncoded, e.g. "adsl+fec",
  // "drm@B+fec". The suffix test keeps "adsl2+" itself intact.
  if (token.size() > 4 &&
      token.compare(token.size() - 4, 4, "+fec") == 0) {
    StandardSpec spec =
        standard_from_token(token.substr(0, token.size() - 4));
    spec.token = token;
    spec.params = core::with_reference_fec(std::move(spec.params));
    return spec;
  }
  std::string base = token;
  std::string variant;
  const std::size_t at = token.find('@');
  if (at != std::string::npos) {
    base = token.substr(0, at);
    variant = token.substr(at + 1);
  }
  const std::string field = "standard (token '" + token + "')";
  auto no_variant = [&](core::OfdmParams p) {
    OFDM_REQUIRE(variant.empty(),
                 "sim_deck: " + field + ": '" + base +
                     "' takes no @variant");
    return p;
  };

  StandardSpec spec;
  spec.token = token;
  if (base == "wlan_80211a") {
    spec.params = core::profile_wlan_80211a(
        variant.empty() ? core::WlanRate::k36
                        : wlan_rate_from(field, variant));
  } else if (base == "wlan_80211g") {
    spec.params = core::profile_wlan_80211g(
        variant.empty() ? core::WlanRate::k36
                        : wlan_rate_from(field, variant));
  } else if (base == "adsl") {
    spec.params = no_variant(core::profile_adsl());
  } else if (base == "adsl2+") {
    spec.params = no_variant(core::profile_adsl_plus_plus());
  } else if (base == "vdsl") {
    spec.params = no_variant(core::profile_vdsl());
  } else if (base == "homeplug") {
    spec.params = no_variant(core::profile_homeplug());
  } else if (base == "wman_80216a") {
    spec.params = no_variant(core::profile_wman_80216a());
  } else if (base == "drm") {
    core::DrmMode mode = core::DrmMode::kB;
    if (variant == "A") mode = core::DrmMode::kA;
    else if (variant == "B" || variant.empty()) mode = core::DrmMode::kB;
    else if (variant == "C") mode = core::DrmMode::kC;
    else if (variant == "D") mode = core::DrmMode::kD;
    else
      throw ConfigError("sim_deck: " + field + ": unknown DRM mode '" +
                        variant + "' (expect A|B|C|D)");
    spec.params = core::profile_drm(mode);
  } else if (base == "dab") {
    core::DabMode mode = core::DabMode::kI;
    if (variant == "1" || variant.empty()) mode = core::DabMode::kI;
    else if (variant == "2") mode = core::DabMode::kII;
    else if (variant == "3") mode = core::DabMode::kIII;
    else if (variant == "4") mode = core::DabMode::kIV;
    else
      throw ConfigError("sim_deck: " + field + ": unknown DAB mode '" +
                        variant + "' (expect 1|2|3|4)");
    spec.params = core::profile_dab(mode);
  } else if (base == "dvbt") {
    core::DvbtMode mode = core::DvbtMode::k2k;
    if (variant == "2k" || variant.empty()) mode = core::DvbtMode::k2k;
    else if (variant == "8k") mode = core::DvbtMode::k8k;
    else
      throw ConfigError("sim_deck: " + field + ": unknown DVB-T mode '" +
                        variant + "' (expect 2k|8k)");
    spec.params = core::profile_dvbt(mode);
  } else {
    throw ConfigError(
        "sim_deck: standard: unknown standard '" + base +
        "' (expect wlan_80211a|wlan_80211g|adsl|adsl2+|vdsl|drm|dab|"
        "dvbt|wman_80216a|homeplug)");
  }
  return spec;
}

// "0:2:14" (start:step:stop, inclusive) or a plain comma list.
std::vector<double> parse_snr_grid(const std::string& text) {
  std::vector<double> out;
  for (const std::string& item : split(text, ',')) {
    const auto parts = split(item, ':');
    if (parts.size() == 3) {
      const double start = parse_double("snr_db", parts[0]);
      const double step = parse_double("snr_db", parts[1]);
      const double stop = parse_double("snr_db", parts[2]);
      OFDM_REQUIRE(step > 0.0,
                   "sim_deck: snr_db range step must be positive");
      OFDM_REQUIRE(stop >= start,
                   "sim_deck: snr_db range stop must be >= start");
      for (double v = start; v <= stop + step * 1e-9; v += step) {
        out.push_back(v);
      }
    } else if (parts.size() == 1) {
      out.push_back(parse_double("snr_db", item));
    } else {
      throw ConfigError("sim_deck: snr_db expects values or "
                        "start:step:stop ranges, got '" +
                        item + "'");
    }
  }
  OFDM_REQUIRE(!out.empty(), "sim_deck: snr_db is empty");
  return out;
}

}  // namespace

StandardSpec parse_standard_token(const std::string& token) {
  return standard_from_token(token);
}

ScenarioDeck parse_deck(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    const std::size_t eq = line.find('=');
    OFDM_REQUIRE(eq != std::string::npos,
                 "sim_deck: expected key=value, got: " + line);
    OFDM_REQUIRE(eq > 0, "sim_deck: empty key in line: " + line);
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }

  auto take = [&kv](const std::string& key,
                    const std::string& fallback) -> std::string {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    const std::string v = it->second;
    kv.erase(it);
    return v;
  };
  auto require = [&kv](const std::string& key) {
    const auto it = kv.find(key);
    OFDM_REQUIRE(it != kv.end(), "sim_deck: missing key " + key);
    const std::string v = it->second;
    kv.erase(it);
    return v;
  };

  ScenarioDeck d;
  d.name = take("name", d.name);

  for (const std::string& token : split(require("standard"), ',')) {
    d.standards.push_back(standard_from_token(token));
  }
  OFDM_REQUIRE(!d.standards.empty(), "sim_deck: standard list is empty");

  d.snr_db = parse_snr_grid(require("snr_db"));

  // Channel presets: shared parameters read first so the per-token
  // presets below can embed them.
  ChannelPreset mp;
  mp.kind = ChannelPreset::Kind::kMultipath;
  mp.token = "multipath";
  mp.rms_delay_samples =
      parse_double("multipath.rms_delay",
                   take("multipath.rms_delay", "3"));
  mp.n_taps = parse_u64("multipath.taps", take("multipath.taps", "8"));
  mp.taps_seed = parse_u64("multipath.seed", take("multipath.seed", "77"));
  OFDM_REQUIRE(mp.n_taps > 0, "sim_deck: multipath.taps must be > 0");

  ChannelPreset tp;
  tp.kind = ChannelPreset::Kind::kTwistedPair;
  tp.token = "twisted_pair";
  tp.cutoff_norm = parse_double("twisted_pair.cutoff",
                                take("twisted_pair.cutoff", "0.2"));
  tp.attenuation_db =
      parse_double("twisted_pair.attenuation_db",
                   take("twisted_pair.attenuation_db", "6"));

  // Shared parameters of the standard-library presets (rf/channels).
  const std::uint64_t channel_seed =
      parse_u64("channel.seed", take("channel.seed", "505"));
  const double doppler_scale = parse_double(
      "channel.doppler_scale", take("channel.doppler_scale", "1"));
  OFDM_REQUIRE(doppler_scale > 0.0,
               "sim_deck: channel.doppler_scale must be positive");

  for (const std::string& token : split(take("channel", "awgn"), ',')) {
    if (token == "awgn") {
      ChannelPreset p;
      p.kind = ChannelPreset::Kind::kAwgn;
      p.token = "awgn";
      d.channels.push_back(p);
    } else if (token == "multipath") {
      d.channels.push_back(mp);
    } else if (token == "twisted_pair") {
      d.channels.push_back(tp);
    } else if (rf::channels::find_preset(token) != nullptr) {
      ChannelPreset p;
      p.kind = ChannelPreset::Kind::kStandard;
      p.token = token;
      p.channel_seed = channel_seed;
      p.doppler_scale = doppler_scale;
      d.channels.push_back(p);
    } else {
      throw ConfigError(
          "sim_deck: channel: unknown preset '" + token +
          "' (expect awgn|multipath|twisted_pair or a standard "
          "preset: " +
          rf::channels::preset_names() + ")");
    }
  }

  if (kv.count("pa.backoff_db")) {
    d.pa_enabled = true;
    d.pa_backoff_db =
        parse_double("pa.backoff_db", require("pa.backoff_db"));
  }
  d.pa_smoothness =
      parse_double("pa.smoothness", take("pa.smoothness", "2"));
  d.phase_noise_hz = parse_double("phase_noise.linewidth_hz",
                                  take("phase_noise.linewidth_hz", "0"));

  // Receiver-mode grid dimension. Absent key = the single historical
  // coded entry, keeping legacy grids and substreams bit-identical.
  d.rx_modes.clear();
  for (const std::string& token : split(take("rx", "coded"), ',')) {
    const auto mode = rx::rx_mode_from_name(token);
    if (!mode) {
      throw ConfigError("sim_deck: rx: unknown mode '" + token +
                        "' (expect coded|uncoded)");
    }
    for (const RxSpec& seen : d.rx_modes) {
      OFDM_REQUIRE(seen.token != token,
                   "sim_deck: rx: duplicate mode '" + token + "'");
    }
    d.rx_modes.push_back(RxSpec{token, *mode});
  }

  d.rx_equalize = parse_bool("rx.equalize", take("rx.equalize", "1"));
  d.rx_pilot_tracking =
      parse_bool("rx.pilot_tracking", take("rx.pilot_tracking", "0"));
  d.rx_soft = parse_bool("rx.soft", take("rx.soft", "0"));

  d.min_trials = parse_u64("trials.min", take("trials.min", "8"));
  d.max_trials = parse_u64("trials.max", take("trials.max", "256"));
  d.batch_trials = parse_u64("trials.batch", take("trials.batch", "8"));
  d.min_errors = parse_u64("stop.min_errors", take("stop.min_errors", "20"));
  d.stop_rel_ci =
      parse_double("stop.rel_ci", take("stop.rel_ci", "0.25"));
  d.confidence =
      parse_double("stop.confidence", take("stop.confidence", "0.95"));
  d.measure_evm = parse_bool("measure_evm", take("measure_evm", "1"));
  d.payload_bits = parse_u64("payload_bits", take("payload_bits", "0"));
  d.seed = parse_u64("seed", take("seed", "1"));

  OFDM_REQUIRE(d.min_trials > 0, "sim_deck: trials.min must be > 0");
  OFDM_REQUIRE(d.max_trials >= d.min_trials,
               "sim_deck: trials.max must be >= trials.min");
  OFDM_REQUIRE(d.batch_trials > 0, "sim_deck: trials.batch must be > 0");
  OFDM_REQUIRE(d.stop_rel_ci > 0.0,
               "sim_deck: stop.rel_ci must be positive");
  OFDM_REQUIRE(d.confidence > 0.0 && d.confidence < 1.0,
               "sim_deck: stop.confidence must be in (0, 1)");

  OFDM_REQUIRE(kv.empty(),
               "sim_deck: unknown key " +
                   (kv.empty() ? std::string() : kv.begin()->first));
  return d;
}

std::vector<PointSpec> expand_grid(const ScenarioDeck& deck) {
  std::vector<PointSpec> grid;
  grid.reserve(deck.standards.size() * deck.channels.size() *
               deck.rx_modes.size() * deck.snr_db.size());
  std::size_t index = 0;
  for (std::size_t s = 0; s < deck.standards.size(); ++s) {
    for (std::size_t c = 0; c < deck.channels.size(); ++c) {
      for (std::size_t r = 0; r < deck.rx_modes.size(); ++r) {
        for (double snr : deck.snr_db) {
          grid.push_back({index++, s, c, r, snr});
        }
      }
    }
  }
  return grid;
}

std::uint64_t deck_digest(const ScenarioDeck& deck) {
  // FNV-1a over a canonical field walk: stable across comment edits and
  // key reordering, different for any grid-relevant change.
  std::uint64_t h = 0xCBF29CE484222325ull;
  auto mix_bytes = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001B3ull;
    }
  };
  auto mix_u64 = [&](std::uint64_t v) { mix_bytes(&v, sizeof v); };
  auto mix_f64 = [&](double v) { mix_u64(std::bit_cast<std::uint64_t>(v)); };
  auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    mix_bytes(s.data(), s.size());
  };

  mix_str(deck.name);
  mix_u64(deck.standards.size());
  for (const auto& s : deck.standards) mix_str(s.token);
  mix_u64(deck.snr_db.size());
  for (double v : deck.snr_db) mix_f64(v);
  mix_u64(deck.channels.size());
  for (const auto& c : deck.channels) {
    mix_u64(static_cast<std::uint64_t>(c.kind));
    mix_f64(c.rms_delay_samples);
    mix_u64(c.n_taps);
    mix_u64(c.taps_seed);
    mix_f64(c.cutoff_norm);
    mix_f64(c.attenuation_db);
    if (c.kind == ChannelPreset::Kind::kStandard) {
      mix_str(c.token);
      mix_u64(c.channel_seed);
      mix_f64(c.doppler_scale);
    }
  }
  mix_u64(deck.pa_enabled);
  mix_f64(deck.pa_backoff_db);
  mix_f64(deck.pa_smoothness);
  mix_f64(deck.phase_noise_hz);
  mix_u64(deck.rx_equalize);
  mix_u64(deck.rx_pilot_tracking);
  mix_u64(deck.rx_soft);
  mix_u64(deck.min_trials);
  mix_u64(deck.max_trials);
  mix_u64(deck.batch_trials);
  mix_u64(deck.min_errors);
  mix_f64(deck.stop_rel_ci);
  mix_f64(deck.confidence);
  mix_u64(deck.measure_evm);
  mix_u64(deck.payload_bits);
  mix_u64(deck.seed);
  // The rx dimension is mixed only when it differs from the historical
  // single-coded default, so checkpoints of pre-rx decks keep resuming
  // (same conditional-field policy as the kStandard channel extras).
  if (deck.rx_modes.size() != 1 ||
      deck.rx_modes[0].mode != rx::RxMode::kCoded) {
    mix_u64(deck.rx_modes.size());
    for (const RxSpec& r : deck.rx_modes) mix_str(r.token);
  }
  return h;
}

}  // namespace ofdm::sim
