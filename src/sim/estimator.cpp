#include "sim/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/ber.hpp"

namespace ofdm::sim {

std::string stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::kNone: return "running";
    case StopReason::kCiWidth: return "ci";
    case StopReason::kMaxTrials: return "max_trials";
  }
  return "?";
}

void PointState::accumulate(const TrialResult& t) {
  ++trials;
  bits += t.bits;
  errors += t.errors;
  evm_err2 += t.evm_err2;
  evm_ref2 += t.evm_ref2;
  seconds += t.seconds;
}

double PointState::ber() const {
  return bits > 0
             ? static_cast<double>(errors) / static_cast<double>(bits)
             : 0.0;
}

double PointState::evm_rms() const {
  return evm_ref2 > 0.0 ? std::sqrt(evm_err2 / evm_ref2) : 0.0;
}

std::size_t next_round_target(const ScenarioDeck& deck,
                              const PointState& state) {
  const std::size_t target = state.trials < deck.min_trials
                                 ? deck.min_trials
                                 : state.trials + deck.batch_trials;
  return std::min(target, deck.max_trials);
}

void evaluate_stop(const ScenarioDeck& deck, PointState& state) {
  if (state.done) return;
  if (state.trials >= deck.min_trials && state.errors >= deck.min_errors &&
      state.bits > 0) {
    const auto ci = metrics::binomial_ci(state.bits, state.errors,
                                         deck.confidence);
    if (ci.width() <= deck.stop_rel_ci * state.ber()) {
      state.done = true;
      state.reason = StopReason::kCiWidth;
      return;
    }
  }
  if (state.trials >= deck.max_trials) {
    state.done = true;
    state.reason = StopReason::kMaxTrials;
  }
}

}  // namespace ofdm::sim
