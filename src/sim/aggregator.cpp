#include "sim/aggregator.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "metrics/ber.hpp"

namespace ofdm::sim {

namespace {

// Fixed, locale-free double rendering: shortest round-trip-exact form
// would do too, but %.17g is simple and stable for byte-diffing.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

struct PointView {
  const PointResult& p;
  double ber;
  double ci_lo;
  double ci_hi;
  double evm_rms;
};

PointView view_of(const ScenarioDeck& deck, const PointResult& p) {
  const auto ci =
      metrics::binomial_ci(p.state.bits, p.state.errors, deck.confidence);
  return {p, p.state.ber(), ci.lo, ci.hi, p.state.evm_rms()};
}

void append_point_json(std::ostringstream& os, const ScenarioDeck& deck,
                       const PointResult& p) {
  const PointView v = view_of(deck, p);
  os << "{\"snr_db\":" << fmt(p.spec.snr_db)
     << ",\"trials\":" << p.state.trials << ",\"bits\":" << p.state.bits
     << ",\"errors\":" << p.state.errors << ",\"ber\":" << fmt(v.ber)
     << ",\"ci_lo\":" << fmt(v.ci_lo) << ",\"ci_hi\":" << fmt(v.ci_hi)
     << ",\"evm_rms\":" << fmt(v.evm_rms)
     << ",\"valid\":" << (p.state.bits > 0 ? "true" : "false")
     << ",\"stop\":\"" << stop_reason_name(p.state.reason) << "\"}";
}

}  // namespace

std::string curves_json(const ScenarioDeck& deck,
                        const CampaignResult& result) {
  std::ostringstream os;
  os << "{\"campaign\":\"" << deck.name << "\",\"seed\":" << deck.seed
     << ",\"confidence\":" << fmt(deck.confidence) << ",\"curves\":[";
  bool first_curve = true;
  // Grid order is standard-major, then channel, then rx mode, so one
  // linear scan per (standard, channel, rx) triple collects each
  // curve's SNR points in order.
  for (std::size_t s = 0; s < deck.standards.size(); ++s) {
    for (std::size_t c = 0; c < deck.channels.size(); ++c) {
      for (std::size_t r = 0; r < deck.rx_modes.size(); ++r) {
        if (!first_curve) os << ",";
        first_curve = false;
        os << "{\"standard\":\"" << deck.standards[s].token
           << "\",\"channel\":\"" << deck.channels[c].token
           << "\",\"rx\":\"" << deck.rx_modes[r].token
           << "\",\"points\":[";
        bool first_point = true;
        for (const PointResult& p : result.points) {
          if (p.spec.standard_index != s || p.spec.channel_index != c ||
              p.spec.rx_index != r) {
            continue;
          }
          if (!first_point) os << ",";
          first_point = false;
          append_point_json(os, deck, p);
        }
        os << "]}";
      }
    }
  }
  os << "]}\n";
  return os.str();
}

std::string curves_csv(const ScenarioDeck& deck,
                       const CampaignResult& result) {
  std::ostringstream os;
  os << "standard,channel,rx,snr_db,trials,bits,errors,ber,ci_lo,ci_hi,"
        "evm_rms,valid,stop\n";
  for (const PointResult& p : result.points) {
    const PointView v = view_of(deck, p);
    os << p.standard << "," << p.channel << "," << p.rx << ","
       << fmt(p.spec.snr_db)
       << "," << p.state.trials << "," << p.state.bits << ","
       << p.state.errors << "," << fmt(v.ber) << "," << fmt(v.ci_lo)
       << "," << fmt(v.ci_hi) << "," << fmt(v.evm_rms) << ","
       << (p.state.bits > 0 ? 1 : 0) << ","
       << stop_reason_name(p.state.reason) << "\n";
  }
  return os.str();
}

std::string timing_table(const CampaignResult& result) {
  std::ostringstream os;
  char line[192];
  std::snprintf(line, sizeof line,
                "%-5s %-18s %-13s %-8s %7s %7s %9s %11s %9s %9s\n",
                "point", "standard", "channel", "rx", "snr_dB", "trials",
                "errors", "ber", "wall_s", "trials/s");
  os << line;
  double total_seconds = 0.0;
  std::size_t total_trials = 0;
  for (const PointResult& p : result.points) {
    const double tps =
        p.state.seconds > 0.0
            ? static_cast<double>(p.state.trials) / p.state.seconds
            : 0.0;
    std::snprintf(
        line, sizeof line,
        "%-5zu %-18s %-13s %-8s %7.1f %7zu %9zu %11.3e %9.3f %9.1f\n",
        p.spec.index, p.standard.c_str(), p.channel.c_str(),
        p.rx.c_str(), p.spec.snr_db, p.state.trials, p.state.errors,
        p.state.ber(), p.state.seconds, tps);
    os << line;
    total_seconds += p.state.seconds;
    total_trials += p.state.trials;
  }
  std::snprintf(line, sizeof line,
                "total: %zu trials, %.3f trial-seconds (sum over "
                "workers), %.3f s wall, %zu rounds%s\n",
                total_trials, total_seconds, result.elapsed_seconds,
                result.rounds_completed,
                result.halted ? " [HALTED]" : "");
  os << line;
  return os.str();
}

}  // namespace ofdm::sim
