// The Monte-Carlo campaign engine: scenario deck -> job matrix ->
// parallel BER/EVM link sweeps with early stopping and
// checkpoint/resume.
//
// Execution model: each grid point advances in *rounds* (min_trials
// first, then batch_trials at a time). A round's trials are split into
// batch tasks on the work-stealing pool; the last batch to finish
// reduces the round's results IN TRIAL ORDER into the point's counters,
// evaluates the early-stop rule, checkpoints, and schedules the point's
// next round. Trials are pure functions of (seed, point, trial)
// (Rng::substream), reduction order is fixed, and stop decisions happen
// only at round boundaries — so every estimate is bit-identical for any
// thread count and across any checkpoint/resume cut.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/deck.hpp"
#include "sim/estimator.hpp"

namespace ofdm::sim {

struct RunOptions {
  std::size_t threads = 1;
  /// Checkpoint file maintained at every round boundary (atomic
  /// temp+rename); empty disables checkpointing.
  std::string checkpoint_path;
  /// Load checkpoint_path before running (missing file = fresh start).
  bool resume = false;
  /// Testing/CI kill switch: stop scheduling new rounds once this many
  /// rounds have completed, drain, checkpoint and return with
  /// CampaignResult::halted set. 0 = run to completion.
  std::size_t halt_after_rounds = 0;
  /// Run trials through LinkRunner::run_trials (burst/chunk buffers
  /// reused across a batch). Bit-identical curves either way; off is an
  /// A/B lever for the bench suite.
  bool use_batch_api = true;
};

/// One finished (or halted) grid point with its resolved labels.
struct PointResult {
  PointSpec spec;
  std::string standard;  ///< deck token, e.g. "wlan_80211a@24"
  std::string channel;   ///< preset token, e.g. "awgn"
  PointState state;
};

struct CampaignResult {
  std::vector<PointResult> points;  ///< grid order
  double elapsed_seconds = 0.0;
  std::size_t rounds_completed = 0;
  bool halted = false;
};

class Campaign {
 public:
  explicit Campaign(ScenarioDeck deck);

  const ScenarioDeck& deck() const { return deck_; }
  const std::vector<PointSpec>& grid() const { return grid_; }

  /// Run (or resume) the campaign. Throws the first trial error, or
  /// ofdm::StateError on a checkpoint mismatch.
  CampaignResult run(const RunOptions& opts = {});

 private:
  ScenarioDeck deck_;
  std::vector<PointSpec> grid_;
};

}  // namespace ofdm::sim
