// The Monte-Carlo campaign engine: scenario deck -> job matrix ->
// parallel BER/EVM link sweeps with early stopping and
// checkpoint/resume.
//
// Execution model: each grid point advances in *rounds* (min_trials
// first, then batch_trials at a time). A round's trials are split into
// batch tasks on the work-stealing pool; the last batch to finish
// reduces the round's results IN TRIAL ORDER into the point's counters,
// evaluates the early-stop rule, checkpoints, and schedules the point's
// next round. Trials are pure functions of (seed, point, trial)
// (Rng::substream), reduction order is fixed, and stop decisions happen
// only at round boundaries — so every estimate is bit-identical for any
// thread count and across any checkpoint/resume cut.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/cancel.hpp"
#include "sim/deck.hpp"
#include "sim/estimator.hpp"

namespace ofdm::sim {

struct RunOptions {
  std::size_t threads = 1;
  /// Checkpoint file maintained at every round boundary (atomic
  /// temp+rename); empty disables checkpointing.
  std::string checkpoint_path;
  /// Load checkpoint_path before running (missing file = fresh start).
  bool resume = false;
  /// Testing/CI kill switch: stop scheduling new rounds once this many
  /// rounds have completed, drain, checkpoint and return with
  /// CampaignResult::halted set. 0 = run to completion.
  std::size_t halt_after_rounds = 0;
  /// Run trials through LinkRunner::run_trials (burst/chunk buffers
  /// reused across a batch). Bit-identical curves either way; off is an
  /// A/B lever for the bench suite.
  bool use_batch_api = true;
  /// Cooperative stop: polled between trials and at round boundaries.
  /// A stopped run drains like halt_after_rounds (in-flight rounds are
  /// abandoned, the checkpoint stays at the last completed boundary)
  /// and returns with halted + cancelled/deadline_expired set. The
  /// token must outlive run(). nullptr = never stops early.
  const CancelToken* cancel = nullptr;
  /// Progress hook, invoked after every completed round (and its
  /// checkpoint write) under the driver lock with cumulative counters
  /// for THIS run: rounds completed, grid points finished, trials
  /// reduced. Keep it cheap — it serializes round completion.
  std::function<void(std::size_t rounds, std::size_t points_done,
                     std::size_t trials)>
      on_round;
};

/// One finished (or halted) grid point with its resolved labels.
struct PointResult {
  PointSpec spec;
  std::string standard;  ///< deck token, e.g. "wlan_80211a@24"
  std::string channel;   ///< preset token, e.g. "awgn"
  std::string rx;        ///< rx-mode token, "coded" or "uncoded"
  PointState state;
};

struct CampaignResult {
  std::vector<PointResult> points;  ///< grid order
  double elapsed_seconds = 0.0;
  std::size_t rounds_completed = 0;
  /// Stopped before every point finished (halt_after_rounds, a
  /// cancelled token, or an expired deadline). The checkpoint on disk
  /// is consistent; resuming completes the sweep bit-identically.
  bool halted = false;
  bool cancelled = false;         ///< RunOptions::cancel was cancelled
  bool deadline_expired = false;  ///< RunOptions::cancel deadline passed
};

class Campaign {
 public:
  explicit Campaign(ScenarioDeck deck);

  const ScenarioDeck& deck() const { return deck_; }
  const std::vector<PointSpec>& grid() const { return grid_; }

  /// Run (or resume) the campaign. Throws the first trial error, or
  /// ofdm::StateError on a checkpoint mismatch.
  CampaignResult run(const RunOptions& opts = {});

 private:
  ScenarioDeck deck_;
  std::vector<PointSpec> grid_;
};

}  // namespace ofdm::sim
