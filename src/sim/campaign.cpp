#include "sim/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "sim/checkpoint.hpp"
#include "sim/scheduler.hpp"
#include "sim/trial.hpp"

namespace ofdm::sim {

namespace {

/// One in-flight round of trials for a point. `results` is indexed by
/// trial offset within the round, so the reduction can run in trial
/// order regardless of which worker finished which batch when.
struct Round {
  std::size_t point = 0;
  std::size_t first_trial = 0;
  std::vector<TrialResult> results;
  std::atomic<std::size_t> remaining_tasks{0};
  /// Set when any batch of the round stopped early on a cancel/deadline
  /// request. An abandoned round is discarded wholesale: its partial
  /// results never reach the point counters, so the checkpoint stays at
  /// the previous round boundary and a resume recomputes the identical
  /// round from scratch.
  std::atomic<bool> abandoned{false};
};

struct Driver {
  const ScenarioDeck& deck;
  const std::vector<PointSpec>& grid;
  const RunOptions& opts;
  WorkStealingPool& pool;
  std::vector<PointState>& states;

  std::mutex m;  // guards states, rounds_completed, halted, progress
  std::size_t rounds_completed = 0;
  std::size_t points_done = 0;
  std::size_t trials_done = 0;  ///< trials reduced by THIS run
  bool halted = false;

  bool stop_requested() const {
    return opts.cancel != nullptr && opts.cancel->stop_requested();
  }

  // Call at startup (single-threaded) or from complete_round() under m.
  void schedule_round(std::size_t point) {
    const std::size_t target = next_round_target(deck, states[point]);
    const std::size_t n = target - states[point].trials;
    auto round = std::make_shared<Round>();
    round->point = point;
    round->first_trial = states[point].trials;
    round->results.resize(n);
    const std::size_t batch = deck.batch_trials;
    const std::size_t n_tasks = (n + batch - 1) / batch;
    round->remaining_tasks.store(n_tasks, std::memory_order_relaxed);
    for (std::size_t t = 0; t < n_tasks; ++t) {
      const std::size_t a = t * batch;
      const std::size_t b = std::min(a + batch, n);
      pool.submit([this, round, a, b] {
        if (stop_requested()) {
          // Drain fast: skip the whole batch, the round is abandoned.
          round->abandoned.store(true, std::memory_order_release);
        } else {
          LinkRunner runner(deck, grid[round->point]);
          if (opts.use_batch_api) {
            const std::size_t done = runner.run_trials(
                round->first_trial + a,
                std::span<TrialResult>(round->results).subspan(a, b - a),
                opts.cancel);
            if (done < b - a) {
              round->abandoned.store(true, std::memory_order_release);
            }
          } else {
            for (std::size_t i = a; i < b; ++i) {
              if (stop_requested()) {
                round->abandoned.store(true, std::memory_order_release);
                break;
              }
              round->results[i] =
                  runner.run_trial(round->first_trial + i);
            }
          }
        }
        if (round->remaining_tasks.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          complete_round(*round);
        }
      });
    }
  }

  void complete_round(const Round& round) {
    std::lock_guard<std::mutex> lk(m);
    if (round.abandoned.load(std::memory_order_acquire) ||
        stop_requested()) {
      // The round never happened as far as the counters are concerned;
      // the last checkpoint on disk already describes this state.
      halted = true;
      return;
    }
    PointState& st = states[round.point];
    for (const TrialResult& t : round.results) st.accumulate(t);
    evaluate_stop(deck, st);
    ++rounds_completed;
    trials_done += round.results.size();
    if (st.done) ++points_done;
    if (opts.halt_after_rounds > 0 &&
        rounds_completed >= opts.halt_after_rounds) {
      halted = true;
    }
    if (!opts.checkpoint_path.empty()) {
      write_checkpoint_file(opts.checkpoint_path,
                            save_checkpoint(deck, states));
    }
    if (opts.on_round) {
      opts.on_round(rounds_completed, points_done, trials_done);
    }
    if (!st.done && !halted) schedule_round(round.point);
  }
};

}  // namespace

Campaign::Campaign(ScenarioDeck deck)
    : deck_(std::move(deck)), grid_(expand_grid(deck_)) {
  OFDM_REQUIRE(!grid_.empty(), "sim: scenario deck expands to no points");
}

CampaignResult Campaign::run(const RunOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<PointState> states(grid_.size());
  if (opts.resume && !opts.checkpoint_path.empty()) {
    std::FILE* probe = std::fopen(opts.checkpoint_path.c_str(), "rb");
    if (probe) {
      std::fclose(probe);
      load_checkpoint(read_checkpoint_file(opts.checkpoint_path), deck_,
                      states);
    }
  }

  WorkStealingPool pool(opts.threads);
  Driver driver{deck_, grid_, opts, pool, states, {}, 0, 0, 0, false};
  for (const PointSpec& p : grid_) {
    if (!states[p.index].done) driver.schedule_round(p.index);
  }
  pool.wait_idle();

  // Final checkpoint so a completed (or halted-with-no-rounds) run
  // leaves a consistent file even if no round completed after resume.
  if (!opts.checkpoint_path.empty()) {
    write_checkpoint_file(opts.checkpoint_path,
                          save_checkpoint(deck_, states));
  }

  CampaignResult result;
  result.points.reserve(grid_.size());
  for (const PointSpec& p : grid_) {
    PointResult pr;
    pr.spec = p;
    pr.standard = deck_.standards[p.standard_index].token;
    pr.channel = deck_.channels[p.channel_index].token;
    pr.rx = deck_.rx_modes[p.rx_index].token;
    pr.state = states[p.index];
    result.points.push_back(std::move(pr));
  }
  result.rounds_completed = driver.rounds_completed;
  result.halted = driver.halted;
  if (opts.cancel != nullptr) {
    result.cancelled = opts.cancel->cancelled();
    result.deadline_expired =
        !result.cancelled && opts.cancel->deadline_expired();
    // A stop that lands after the last round completed still counts as
    // a halt: callers must treat the run as interrupted, not finished.
    if (result.cancelled || result.deadline_expired) result.halted = true;
  }
  result.elapsed_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  return result;
}

}  // namespace ofdm::sim
