// Gray-coded QAM constellations.
//
// One Constellation object describes a complete bits<->symbols mapping,
// normalized to unit average energy. Square QAM (even bit counts) and
// rectangular QAM (odd bit counts, used by the DMT bit-loading path) are
// both composed from Gray-coded PAM axes.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/types.hpp"

namespace ofdm::mapping {

enum class Scheme {
  kBpsk,    ///< 1 bit, real axis
  kQpsk,    ///< 2 bits
  kQam16,   ///< 4 bits
  kQam64,   ///< 6 bits
  kQam256,  ///< 8 bits
};

/// Bits per symbol for a scheme.
std::size_t bits_per_symbol(Scheme s);
std::string scheme_name(Scheme s);

/// Demapper output selection. kHard slices to the nearest point's bits
/// (the Gray threshold path — bit-exact with the historical demapper);
/// kSoft emits max-log LLRs normalized by the noise variance.
enum class DemapMode {
  kHard,
  kSoft,
};

std::string demap_mode_name(DemapMode m);

/// A concrete constellation with Gray mapping and unit average energy.
class Constellation {
 public:
  /// Standard square constellation for a scheme (802.11a 17.3.5.7 style).
  static Constellation make(Scheme s);

  /// Rectangular QAM with `bits_i` Gray-coded bits on I and `bits_q` on Q
  /// (bits_q == 0 gives PAM). Used for DMT tones with odd bit loads.
  static Constellation make_rect(std::size_t bits_i, std::size_t bits_q);

  std::size_t bits() const { return bits_i_ + bits_q_; }
  std::size_t size() const { return std::size_t{1} << bits(); }

  /// Map `bits()` bits (MSB-significant: I bits first, then Q bits) to a
  /// symbol.
  cplx map(std::span<const std::uint8_t> bits) const;

  /// Map a whole stream; length must be a multiple of bits().
  cvec map_all(std::span<const std::uint8_t> bits) const;

  /// map_all into a caller-owned buffer (resized to the symbol count):
  /// the no-allocation path for batched transmit.
  void map_into(std::span<const std::uint8_t> bits, cvec& out) const;

  /// Hard-decision demap of one symbol back to bits (appended to `out`).
  void demap(cplx symbol, bitvec& out) const;

  /// Demap a symbol stream.
  bitvec demap_all(std::span<const cplx> symbols) const;

  /// Max-log soft demap: appends one LLR per bit, with the convention
  /// llr > 0 => bit 0 more likely. `noise_var` scales the magnitudes
  /// (LLR = (d1² - d0²)/noise_var with d_b the distance to the nearest
  /// point whose bit equals b).
  void demap_soft(cplx symbol, double noise_var, rvec& out) const;

  /// Soft demap of a symbol stream.
  rvec demap_soft_all(std::span<const cplx> symbols,
                      double noise_var) const;

  /// demap_soft_all into a caller-owned buffer (resized to
  /// symbols.size() * bits()): the no-allocation batched path, running
  /// the whole stream through the SIMD `demap_soft` kernel.
  void demap_soft_into(std::span<const cplx> symbols, double noise_var,
                       rvec& out) const;

  /// Per-symbol noise variances (the per-tone equalizer weighting:
  /// noise_var.size() must equal symbols.size()).
  void demap_soft_into(std::span<const cplx> symbols,
                       std::span<const double> noise_var,
                       rvec& out) const;

  /// The point a given bit pattern maps to (index = bits as an integer,
  /// I bits in the high positions).
  cplx point(std::size_t index) const;

  /// sqrt of unnormalized average energy: the K_MOD scale denominator.
  double norm_factor() const { return norm_; }

 private:
  Constellation(std::size_t bits_i, std::size_t bits_q);

  static int gray_to_level(std::size_t gray_bits, std::size_t n_bits);
  static std::size_t level_to_gray(double value, std::size_t n_bits);
  void demap_scaled(cplx scaled, bitvec& out) const;
  const cplx* soft_points(cvec& scratch) const;

  std::size_t bits_i_;
  std::size_t bits_q_;
  double norm_;
  cvec lut_;  // point table indexed by the symbol's bits (MSB-first);
              // empty above kLutMaxBits, where map() computes directly
};

}  // namespace ofdm::mapping
