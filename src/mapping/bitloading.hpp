// DMT bit loading for the wireline members of the family (ADSL, ADSL2+,
// VDSL). Each tone carries an independently sized QAM constellation; the
// per-tone bit table is part of the Mother Model's reconfiguration state.
//
// Odd bit loads use rectangular QAM (ceil(b/2) bits on I, floor(b/2) on
// Q). G.992.1 specifies cross constellations for odd b >= 5; rectangular
// QAM carries the same bit count with slightly higher peak power, which
// is irrelevant to the co-modeling experiments — see DESIGN.md.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "mapping/constellation.hpp"

namespace ofdm::mapping {

/// Per-tone bit allocation. 0 = tone unused; valid loads are 1..15 bits.
using BitTable = std::vector<std::uint8_t>;

inline constexpr std::uint8_t kMaxBitsPerTone = 15;

/// Total payload bits carried by one DMT symbol under this table.
std::size_t table_bits(const BitTable& table);

/// Chow-style allocation from a per-tone SNR estimate:
/// b_i = floor(log2(1 + snr_i / gamma)), clamped to [0, max_bits], with
/// b_i = 0 when the tone cannot support `min_bits`.
BitTable compute_bit_allocation(std::span<const double> snr_db,
                                double gamma_db,
                                std::uint8_t max_bits = kMaxBitsPerTone,
                                std::uint8_t min_bits = 2);

/// Maps a serial bit stream across the tones of one DMT symbol according
/// to a bit table, producing one complex value per tone (unused tones get
/// zero). Constellations are cached per bit-load value.
class DmtMapper {
 public:
  explicit DmtMapper(BitTable table);

  const BitTable& table() const { return table_; }
  std::size_t tones() const { return table_.size(); }
  std::size_t bits_per_symbol() const { return bits_per_symbol_; }

  /// Map exactly bits_per_symbol() bits onto tones() complex values.
  cvec map_symbol(std::span<const std::uint8_t> bits) const;

  /// Hard demap of tones() values back to bits_per_symbol() bits.
  bitvec demap_symbol(std::span<const cplx> tones_in) const;

 private:
  const Constellation& constellation_for(std::uint8_t load) const;

  BitTable table_;
  std::size_t bits_per_symbol_;
  std::vector<Constellation> cache_;  // index = bit load, 1..15
};

}  // namespace ofdm::mapping
