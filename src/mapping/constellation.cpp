#include "mapping/constellation.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "dsp/simd/dispatch.hpp"

namespace ofdm::mapping {

namespace {
// Constellations at or below this bit width get an eager point table
// (at most 1024 entries, 16 KiB) so map_into is a pure LUT sweep. The
// 8+8-bit rectangular extreme would cost 1 MiB per instance — those
// keep the computed path.
constexpr std::size_t kLutMaxBits = 10;
// Stack chunk for the batched hard demap's scale pass.
constexpr std::size_t kDemapChunk = 128;
}  // namespace

std::size_t bits_per_symbol(Scheme s) {
  switch (s) {
    case Scheme::kBpsk: return 1;
    case Scheme::kQpsk: return 2;
    case Scheme::kQam16: return 4;
    case Scheme::kQam64: return 6;
    case Scheme::kQam256: return 8;
  }
  return 0;
}

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kBpsk: return "BPSK";
    case Scheme::kQpsk: return "QPSK";
    case Scheme::kQam16: return "16-QAM";
    case Scheme::kQam64: return "64-QAM";
    case Scheme::kQam256: return "256-QAM";
  }
  return "?";
}

Constellation Constellation::make(Scheme s) {
  switch (s) {
    case Scheme::kBpsk: return Constellation(1, 0);
    case Scheme::kQpsk: return Constellation(1, 1);
    case Scheme::kQam16: return Constellation(2, 2);
    case Scheme::kQam64: return Constellation(3, 3);
    case Scheme::kQam256: return Constellation(4, 4);
  }
  return Constellation(1, 0);
}

Constellation Constellation::make_rect(std::size_t bits_i,
                                       std::size_t bits_q) {
  return Constellation(bits_i, bits_q);
}

Constellation::Constellation(std::size_t bits_i, std::size_t bits_q)
    : bits_i_(bits_i), bits_q_(bits_q) {
  OFDM_REQUIRE(bits_i >= 1 && bits_i <= 8 && bits_q <= 8,
               "Constellation: need 1..8 I bits and 0..8 Q bits");
  // Average energy of an M-PAM axis with levels {±1, ±3, ...}: (M²-1)/3.
  auto axis_energy = [](std::size_t nbits) {
    if (nbits == 0) return 0.0;
    const double m = static_cast<double>(std::size_t{1} << nbits);
    return (m * m - 1.0) / 3.0;
  };
  norm_ = std::sqrt(axis_energy(bits_i_) + axis_energy(bits_q_));
  if (bits() <= kLutMaxBits) {
    lut_.resize(size());
    bitvec pattern;
    for (std::size_t i = 0; i < lut_.size(); ++i) {
      pattern.clear();
      append_uint(pattern, i, bits());
      lut_[i] = map(pattern);
    }
  }
}

int Constellation::gray_to_level(std::size_t gray_bits, std::size_t n_bits) {
  // Gray -> binary index.
  std::size_t b = gray_bits;
  for (std::size_t shift = 1; shift < n_bits; shift <<= 1) b ^= b >> shift;
  const std::size_t m = std::size_t{1} << n_bits;
  return 2 * static_cast<int>(b) - static_cast<int>(m - 1);
}

std::size_t Constellation::level_to_gray(double value, std::size_t n_bits) {
  const auto m = static_cast<long>(std::size_t{1} << n_bits);
  long idx = std::lround((value + static_cast<double>(m - 1)) / 2.0);
  idx = std::clamp(idx, 0l, m - 1);
  const auto b = static_cast<std::size_t>(idx);
  return b ^ (b >> 1);
}

cplx Constellation::map(std::span<const std::uint8_t> bits) const {
  OFDM_REQUIRE_DIM(bits.size() == this->bits(),
                   "Constellation::map: wrong bit count");
  const std::size_t gi = bits_to_uint(bits, 0, bits_i_);
  const double i_level = gray_to_level(gi, bits_i_);
  double q_level = 0.0;
  if (bits_q_ > 0) {
    const std::size_t gq = bits_to_uint(bits, bits_i_, bits_q_);
    q_level = gray_to_level(gq, bits_q_);
  }
  return cplx{i_level, q_level} / norm_;
}

cvec Constellation::map_all(std::span<const std::uint8_t> bits) const {
  cvec out;
  map_into(bits, out);
  return out;
}

void Constellation::map_into(std::span<const std::uint8_t> bits,
                             cvec& out) const {
  const std::size_t bps = this->bits();
  OFDM_REQUIRE_DIM(bits.size() % bps == 0,
                   "Constellation::map_all: bit count not a multiple of "
                   "bits per symbol");
  const std::size_t n_sym = bits.size() / bps;
  out.resize(n_sym);
  if (!lut_.empty()) {
    simd::kernels().map_lut(bits.data(), n_sym, bps, lut_.data(),
                            out.data());
    return;
  }
  for (std::size_t i = 0; i < n_sym; ++i) {
    out[i] = map(bits.subspan(i * bps, bps));
  }
}

void Constellation::demap_scaled(cplx scaled, bitvec& out) const {
  append_uint(out, level_to_gray(scaled.real(), bits_i_), bits_i_);
  if (bits_q_ > 0) {
    append_uint(out, level_to_gray(scaled.imag(), bits_q_), bits_q_);
  }
}

void Constellation::demap(cplx symbol, bitvec& out) const {
  demap_scaled(symbol * norm_, out);
}

bitvec Constellation::demap_all(std::span<const cplx> symbols) const {
  bitvec out;
  out.reserve(symbols.size() * bits());
  // Batch the scale pass through the kernel table; the Gray slicing
  // itself stays scalar (std::lround's half-away-from-zero rounding has
  // no bit-exact vector equivalent).
  cplx scaled[kDemapChunk];
  for (std::size_t i = 0; i < symbols.size(); i += kDemapChunk) {
    const std::size_t m = std::min(kDemapChunk, symbols.size() - i);
    simd::kernels().cvec_scale(symbols.data() + i, norm_, scaled, m);
    for (std::size_t j = 0; j < m; ++j) demap_scaled(scaled[j], out);
  }
  return out;
}

const cplx* Constellation::soft_points(cvec& scratch) const {
  // The LUT built at construction is exactly the max-log point table
  // (index = the symbol's bits). Above kLutMaxBits (the 1 MiB-per-
  // instance rectangular extremes) compute it on demand.
  if (!lut_.empty()) return lut_.data();
  scratch.resize(size());
  for (std::size_t i = 0; i < scratch.size(); ++i) scratch[i] = point(i);
  return scratch.data();
}

void Constellation::demap_soft(cplx symbol, double noise_var,
                               rvec& out) const {
  OFDM_REQUIRE(noise_var > 0.0,
               "demap_soft: noise variance must be positive");
  cvec scratch;
  const cplx* points = soft_points(scratch);
  const std::size_t base = out.size();
  out.resize(base + bits());
  simd::kernels().demap_soft(&symbol, 1, points, size(), bits(),
                             &noise_var, 0, out.data() + base);
}

rvec Constellation::demap_soft_all(std::span<const cplx> symbols,
                                   double noise_var) const {
  rvec out;
  demap_soft_into(symbols, noise_var, out);
  return out;
}

void Constellation::demap_soft_into(std::span<const cplx> symbols,
                                    double noise_var, rvec& out) const {
  OFDM_REQUIRE(noise_var > 0.0,
               "demap_soft_all: noise variance must be positive");
  cvec scratch;
  const cplx* points = soft_points(scratch);
  out.resize(symbols.size() * bits());
  simd::kernels().demap_soft(symbols.data(), symbols.size(), points,
                             size(), bits(), &noise_var, 0, out.data());
}

void Constellation::demap_soft_into(std::span<const cplx> symbols,
                                    std::span<const double> noise_var,
                                    rvec& out) const {
  OFDM_REQUIRE_DIM(noise_var.size() == symbols.size(),
                   "demap_soft_into: need one noise variance per symbol");
  for (const double nv : noise_var) {
    OFDM_REQUIRE(nv > 0.0,
                 "demap_soft_into: noise variance must be positive");
  }
  cvec scratch;
  const cplx* points = soft_points(scratch);
  out.resize(symbols.size() * bits());
  simd::kernels().demap_soft(symbols.data(), symbols.size(), points,
                             size(), bits(), noise_var.data(), 1,
                             out.data());
}

std::string demap_mode_name(DemapMode m) {
  switch (m) {
    case DemapMode::kHard: return "hard";
    case DemapMode::kSoft: return "soft";
  }
  return "?";
}

cplx Constellation::point(std::size_t index) const {
  OFDM_REQUIRE(index < size(), "Constellation::point: index out of range");
  bitvec bits;
  append_uint(bits, index, this->bits());
  return map(bits);
}

}  // namespace ofdm::mapping
