// Differential phase mapping. DAB transmits pi/4-shifted DQPSK and
// HomePlug 1.0 uses DBPSK/DQPSK, both differential *in time per carrier*:
// the information is carried in the phase change between consecutive OFDM
// symbols on the same subcarrier. The mapper therefore keeps one reference
// phase per carrier.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace ofdm::mapping {

enum class DiffKind {
  kDbpsk,     ///< 1 bit/symbol:  0 -> +0,   1 -> +pi
  kDqpsk,     ///< 2 bits/symbol: Gray dibit -> {0, pi/2, pi, 3pi/2}
  kPi4Dqpsk,  ///< DQPSK with an extra +pi/4 rotation every symbol (DAB)
};

std::size_t diff_bits_per_symbol(DiffKind kind);

/// Differential mapper over `carriers` parallel streams.
class DifferentialMapper {
 public:
  DifferentialMapper(DiffKind kind, std::size_t carriers);

  std::size_t carriers() const { return carriers_; }
  std::size_t bits_per_ofdm_symbol() const {
    return carriers_ * diff_bits_per_symbol(kind_);
  }

  /// Reset all carrier references to the given phase-reference symbol
  /// vector (e.g. DAB's phase reference symbol), size == carriers().
  void reset(std::span<const cplx> reference);

  /// Reset to the all-(1+0j) reference.
  void reset();

  /// Map one OFDM symbol worth of bits onto all carriers; returns the new
  /// complex value per carrier and advances the internal reference.
  cvec map_symbol(std::span<const std::uint8_t> bits);

  /// The demapper counterpart: recover bits from the phase change between
  /// the stored reference and `received`, then advance the reference.
  bitvec demap_symbol(std::span<const cplx> received);

 private:
  double phase_increment(std::span<const std::uint8_t> bits,
                         std::size_t offset) const;
  std::size_t decide_bits(double dphase, bitvec& out) const;

  DiffKind kind_;
  std::size_t carriers_;
  cvec ref_;
};

}  // namespace ofdm::mapping
