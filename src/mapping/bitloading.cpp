#include "mapping/bitloading.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ofdm::mapping {

std::size_t table_bits(const BitTable& table) {
  std::size_t total = 0;
  for (std::uint8_t b : table) total += b;
  return total;
}

BitTable compute_bit_allocation(std::span<const double> snr_db,
                                double gamma_db, std::uint8_t max_bits,
                                std::uint8_t min_bits) {
  OFDM_REQUIRE(max_bits >= 1 && max_bits <= kMaxBitsPerTone,
               "compute_bit_allocation: max_bits must be 1..15");
  const double gamma = from_db(gamma_db);
  BitTable table(snr_db.size(), 0);
  for (std::size_t i = 0; i < snr_db.size(); ++i) {
    const double cap = std::log2(1.0 + from_db(snr_db[i]) / gamma);
    auto b = static_cast<std::int64_t>(std::floor(cap));
    if (b > max_bits) b = max_bits;
    if (b < min_bits) b = 0;
    table[i] = static_cast<std::uint8_t>(b);
  }
  return table;
}

DmtMapper::DmtMapper(BitTable table)
    : table_(std::move(table)), bits_per_symbol_(table_bits(table_)) {
  OFDM_REQUIRE(!table_.empty(), "DmtMapper: empty bit table");
  for (std::uint8_t b : table_) {
    OFDM_REQUIRE(b <= kMaxBitsPerTone,
                 "DmtMapper: per-tone load must be <= 15 bits");
  }
  // Build the constellation cache for loads 1..15.
  cache_.reserve(kMaxBitsPerTone + 1);
  cache_.push_back(Constellation::make_rect(1, 0));  // placeholder for 0
  for (std::size_t b = 1; b <= kMaxBitsPerTone; ++b) {
    cache_.push_back(Constellation::make_rect((b + 1) / 2, b / 2));
  }
}

const Constellation& DmtMapper::constellation_for(std::uint8_t load) const {
  return cache_[load];
}

cvec DmtMapper::map_symbol(std::span<const std::uint8_t> bits) const {
  OFDM_REQUIRE_DIM(bits.size() == bits_per_symbol_,
                   "DmtMapper::map_symbol: wrong bit count");
  cvec out(table_.size(), cplx{0.0, 0.0});
  std::size_t pos = 0;
  for (std::size_t t = 0; t < table_.size(); ++t) {
    const std::uint8_t load = table_[t];
    if (load == 0) continue;
    out[t] = constellation_for(load).map(bits.subspan(pos, load));
    pos += load;
  }
  return out;
}

bitvec DmtMapper::demap_symbol(std::span<const cplx> tones_in) const {
  OFDM_REQUIRE_DIM(tones_in.size() == table_.size(),
                   "DmtMapper::demap_symbol: tone count mismatch");
  bitvec out;
  out.reserve(bits_per_symbol_);
  for (std::size_t t = 0; t < table_.size(); ++t) {
    const std::uint8_t load = table_[t];
    if (load == 0) continue;
    constellation_for(load).demap(tones_in[t], out);
  }
  return out;
}

}  // namespace ofdm::mapping
