#include "mapping/differential.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ofdm::mapping {

std::size_t diff_bits_per_symbol(DiffKind kind) {
  return kind == DiffKind::kDbpsk ? 1 : 2;
}

DifferentialMapper::DifferentialMapper(DiffKind kind, std::size_t carriers)
    : kind_(kind), carriers_(carriers) {
  OFDM_REQUIRE(carriers >= 1,
               "DifferentialMapper: need at least one carrier");
  reset();
}

void DifferentialMapper::reset(std::span<const cplx> reference) {
  OFDM_REQUIRE_DIM(reference.size() == carriers_,
                   "DifferentialMapper::reset: reference size mismatch");
  ref_.assign(reference.begin(), reference.end());
}

void DifferentialMapper::reset() {
  ref_.assign(carriers_, cplx{1.0, 0.0});
}

double DifferentialMapper::phase_increment(
    std::span<const std::uint8_t> bits, std::size_t offset) const {
  switch (kind_) {
    case DiffKind::kDbpsk:
      return bits[offset] ? kPi : 0.0;
    case DiffKind::kDqpsk:
    case DiffKind::kPi4Dqpsk: {
      // Gray-coded dibit -> quadrant increment.
      const std::uint8_t b0 = bits[offset];
      const std::uint8_t b1 = bits[offset + 1];
      double inc = 0.0;
      if (b0 == 0 && b1 == 0) inc = 0.0;
      if (b0 == 0 && b1 == 1) inc = kPi / 2.0;
      if (b0 == 1 && b1 == 1) inc = kPi;
      if (b0 == 1 && b1 == 0) inc = 3.0 * kPi / 2.0;
      if (kind_ == DiffKind::kPi4Dqpsk) inc += kPi / 4.0;
      return inc;
    }
  }
  return 0.0;
}

std::size_t DifferentialMapper::decide_bits(double dphase,
                                            bitvec& out) const {
  // Fold to [0, 2pi).
  double p = std::fmod(dphase, kTwoPi);
  if (p < 0.0) p += kTwoPi;
  switch (kind_) {
    case DiffKind::kDbpsk:
      out.push_back(static_cast<std::uint8_t>(
          (p > kPi / 2.0 && p < 3.0 * kPi / 2.0) ? 1 : 0));
      return 1;
    case DiffKind::kPi4Dqpsk:
      p -= kPi / 4.0;
      if (p < 0.0) p += kTwoPi;
      [[fallthrough]];
    case DiffKind::kDqpsk: {
      // Nearest of {0, pi/2, pi, 3pi/2}.
      const int q = static_cast<int>(
                        std::floor(p / (kPi / 2.0) + 0.5)) % 4;
      static constexpr std::uint8_t kGray[4][2] = {
          {0, 0}, {0, 1}, {1, 1}, {1, 0}};
      out.push_back(kGray[q][0]);
      out.push_back(kGray[q][1]);
      return 2;
    }
  }
  return 0;
}

cvec DifferentialMapper::map_symbol(std::span<const std::uint8_t> bits) {
  OFDM_REQUIRE_DIM(bits.size() == bits_per_ofdm_symbol(),
                   "DifferentialMapper::map_symbol: wrong bit count");
  const std::size_t bps = diff_bits_per_symbol(kind_);
  cvec out(carriers_);
  for (std::size_t c = 0; c < carriers_; ++c) {
    const double inc = phase_increment(bits, c * bps);
    const cplx rot{std::cos(inc), std::sin(inc)};
    out[c] = ref_[c] * rot;
    ref_[c] = out[c];
  }
  return out;
}

bitvec DifferentialMapper::demap_symbol(std::span<const cplx> received) {
  OFDM_REQUIRE_DIM(received.size() == carriers_,
                   "DifferentialMapper::demap_symbol: size mismatch");
  bitvec out;
  out.reserve(bits_per_ofdm_symbol());
  for (std::size_t c = 0; c < carriers_; ++c) {
    const double dphase =
        std::arg(received[c] * std::conj(ref_[c]));
    decide_bits(dphase, out);
    ref_[c] = received[c];
  }
  return out;
}

}  // namespace ofdm::mapping
