#include "coding/lfsr.hpp"

#include <bit>

#include "common/error.hpp"

namespace ofdm::coding {

Lfsr::Lfsr(unsigned degree, std::uint64_t taps, std::uint64_t seed)
    : degree_(degree), taps_(taps), state_(seed) {
  OFDM_REQUIRE(degree >= 1 && degree <= 63, "Lfsr: degree must be in 1..63");
  const std::uint64_t mask = (std::uint64_t{1} << degree) - 1;
  OFDM_REQUIRE((taps & ~mask) == 0, "Lfsr: tap mask exceeds degree");
  OFDM_REQUIRE((seed & mask) != 0, "Lfsr: seed must be non-zero");
  state_ &= mask;
}

std::uint8_t Lfsr::step() {
  const auto fb = static_cast<std::uint8_t>(
      std::popcount(state_ & taps_) & 1);
  state_ = ((state_ << 1) | fb) & ((std::uint64_t{1} << degree_) - 1);
  return fb;
}

bitvec Lfsr::sequence(std::size_t n) {
  bitvec out(n);
  for (auto& b : out) b = step();
  return out;
}

void Lfsr::reset(std::uint64_t seed) {
  const std::uint64_t mask = (std::uint64_t{1} << degree_) - 1;
  OFDM_REQUIRE((seed & mask) != 0, "Lfsr::reset: seed must be non-zero");
  state_ = seed & mask;
}

Scrambler::Scrambler(unsigned degree, std::uint64_t taps, std::uint64_t seed)
    : lfsr_(degree, taps, seed), seed0_(seed) {}

bitvec Scrambler::process(std::span<const std::uint8_t> bits) {
  bitvec out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((bits[i] ^ lfsr_.step()) & 1u);
  }
  return out;
}

void Scrambler::reset() { lfsr_.reset(seed0_); }
void Scrambler::reset(std::uint64_t seed) { lfsr_.reset(seed); }

Scrambler make_wlan_scrambler(std::uint64_t seed) {
  // x^7 + x^4 + 1: cells with delays 7 and 4 feed back.
  return Scrambler(7, (1u << 6) | (1u << 3), seed);
}

Scrambler make_dvb_scrambler() {
  // x^15 + x^14 + 1, initialization sequence 100101010000000 (EN 300 744).
  // Register bit i holds delay i+1, so the leftmost '1' of the init string
  // (delay 1) is bit 0.
  // init string (delay 1..15): 1,0,0,1,0,1,0,1,0,0,0,0,0,0,0
  std::uint64_t seed = 0;
  const int init[15] = {1, 0, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 15; ++i) {
    if (init[i]) seed |= std::uint64_t{1} << i;
  }
  return Scrambler(15, (std::uint64_t{1} << 14) | (std::uint64_t{1} << 13),
                   seed);
}

Scrambler make_homeplug_scrambler() {
  // x^10 + x^3 + 1, all-ones initialization (HomePlug 1.0 PHY spec).
  return Scrambler(10, (1u << 9) | (1u << 2), (1u << 10) - 1);
}

}  // namespace ofdm::coding
