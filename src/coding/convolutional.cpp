#include "coding/convolutional.hpp"

#include <bit>

#include "common/error.hpp"

namespace ofdm::coding {

ConvCode k7_industry_code() { return ConvCode{}; }

std::size_t PuncturePattern::kept_per_period() const {
  std::size_t n = 0;
  for (const auto& stream : keep) {
    for (std::uint8_t k : stream) n += k;
  }
  return n;
}

PuncturePattern puncture_none(unsigned num_outputs) {
  PuncturePattern p;
  p.keep.assign(num_outputs, {1});
  return p;
}

PuncturePattern puncture_2_3() {
  // 802.11a rate 2/3: keep A1 A2, keep B1, steal B2.
  return PuncturePattern{{{1, 1}, {1, 0}}};
}

PuncturePattern puncture_3_4() {
  // 802.11a rate 3/4: keep A1 B1 A2, steal B2 A3, keep B3.
  return PuncturePattern{{{1, 0, 1}, {1, 1, 0}}};
}

ConvEncoder::ConvEncoder(ConvCode code) : code_(std::move(code)) {
  OFDM_REQUIRE(code_.constraint_length >= 2 && code_.constraint_length <= 16,
               "ConvEncoder: constraint length must be in 2..16");
  OFDM_REQUIRE(!code_.generators.empty(),
               "ConvEncoder: need at least one generator");
  const std::uint32_t mask =
      (std::uint32_t{1} << code_.constraint_length) - 1;
  for (std::uint32_t g : code_.generators) {
    OFDM_REQUIRE((g & ~mask) == 0,
                 "ConvEncoder: generator exceeds constraint length");
  }
}

bitvec ConvEncoder::encode(std::span<const std::uint8_t> bits) const {
  const unsigned kk = code_.constraint_length;
  bitvec out;
  out.reserve(bits.size() * code_.generators.size());
  std::uint32_t window = 0;  // bit (kk-1) = current input, bit 0 = oldest
  for (std::uint8_t b : bits) {
    window = (window >> 1) |
             (static_cast<std::uint32_t>(b & 1u) << (kk - 1));
    for (std::uint32_t g : code_.generators) {
      out.push_back(static_cast<std::uint8_t>(
          std::popcount(window & g) & 1));
    }
  }
  return out;
}

bitvec ConvEncoder::encode_terminated(std::span<const std::uint8_t> bits) const {
  bitvec padded(bits.begin(), bits.end());
  padded.insert(padded.end(), code_.constraint_length - 1, 0);
  return encode(padded);
}

bitvec puncture(std::span<const std::uint8_t> coded,
                const PuncturePattern& pattern) {
  const std::size_t streams = pattern.keep.size();
  const std::size_t period = pattern.period();
  OFDM_REQUIRE(streams > 0 && period > 0, "puncture: empty pattern");
  OFDM_REQUIRE_DIM(coded.size() % streams == 0,
                   "puncture: coded length not a multiple of stream count");
  bitvec out;
  out.reserve(coded.size());
  std::size_t phase = 0;
  for (std::size_t i = 0; i < coded.size(); i += streams) {
    for (std::size_t j = 0; j < streams; ++j) {
      if (pattern.keep[j][phase]) out.push_back(coded[i + j]);
    }
    phase = (phase + 1) % period;
  }
  return out;
}

std::vector<double> depuncture_soft(std::span<const double> punctured,
                                    const PuncturePattern& pattern,
                                    std::size_t coded_len_mother) {
  const std::size_t streams = pattern.keep.size();
  const std::size_t period = pattern.period();
  OFDM_REQUIRE(streams > 0 && period > 0, "depuncture_soft: empty pattern");
  OFDM_REQUIRE_DIM(coded_len_mother % streams == 0,
                   "depuncture_soft: mother length not a multiple of "
                   "streams");
  std::vector<double> out;
  out.reserve(coded_len_mother);
  std::size_t phase = 0;
  std::size_t src = 0;
  for (std::size_t i = 0; i < coded_len_mother; i += streams) {
    for (std::size_t j = 0; j < streams; ++j) {
      if (pattern.keep[j][phase]) {
        OFDM_REQUIRE_DIM(src < punctured.size(),
                         "depuncture_soft: punctured stream too short");
        out.push_back(punctured[src++]);
      } else {
        out.push_back(0.0);
      }
    }
    phase = (phase + 1) % period;
  }
  OFDM_REQUIRE_DIM(src == punctured.size(),
                   "depuncture_soft: punctured stream too long");
  return out;
}

bitvec depuncture(std::span<const std::uint8_t> punctured,
                  const PuncturePattern& pattern,
                  std::size_t coded_len_mother) {
  const std::size_t streams = pattern.keep.size();
  const std::size_t period = pattern.period();
  OFDM_REQUIRE(streams > 0 && period > 0, "depuncture: empty pattern");
  OFDM_REQUIRE_DIM(coded_len_mother % streams == 0,
                   "depuncture: mother length not a multiple of streams");
  bitvec out;
  out.reserve(coded_len_mother);
  std::size_t phase = 0;
  std::size_t src = 0;
  for (std::size_t i = 0; i < coded_len_mother; i += streams) {
    for (std::size_t j = 0; j < streams; ++j) {
      if (pattern.keep[j][phase]) {
        OFDM_REQUIRE_DIM(src < punctured.size(),
                         "depuncture: punctured stream too short");
        out.push_back(punctured[src++]);
      } else {
        out.push_back(kErasure);
      }
    }
    phase = (phase + 1) % period;
  }
  OFDM_REQUIRE_DIM(src == punctured.size(),
                   "depuncture: punctured stream too long");
  return out;
}

}  // namespace ofdm::coding
