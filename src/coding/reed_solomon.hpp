// Reed-Solomon coding over GF(2^8). DVB-T's outer code is the shortened
// RS(204, 188) derived from RS(255, 239); 802.16a uses shortened variants
// of the same mother code. Both are reconfiguration parameters here.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace ofdm::coding {

/// GF(2^8) arithmetic with primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D),
/// the polynomial used by DVB and 802.16.
class Gf256 {
 public:
  Gf256();

  std::uint8_t add(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;
  }
  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const;
  std::uint8_t div(std::uint8_t a, std::uint8_t b) const;
  std::uint8_t inv(std::uint8_t a) const;
  /// alpha^e for any integer exponent (reduced mod 255).
  std::uint8_t alpha_pow(int e) const;
  /// discrete log base alpha; a must be non-zero.
  int log(std::uint8_t a) const;

 private:
  std::array<std::uint8_t, 512> exp_{};
  std::array<int, 256> log_{};
};

/// Systematic Reed-Solomon code RS(n, k) over GF(2^8), n <= 255.
/// Generator roots are alpha^first_root ... alpha^(first_root+2t-1);
/// DVB uses first_root = 0. Shortened codes (n < 255) are handled by
/// implicit zero-padding, matching the DVB definition of RS(204,188).
class ReedSolomon {
 public:
  ReedSolomon(std::size_t n, std::size_t k, int first_root = 0);

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }
  std::size_t parity() const { return n_ - k_; }
  std::size_t t() const { return (n_ - k_) / 2; }

  /// Encode k message bytes into an n-byte systematic code word
  /// (message first, parity appended).
  bytevec encode(std::span<const std::uint8_t> message) const;

  struct DecodeResult {
    bytevec message;            ///< corrected k message bytes
    std::size_t errors_corrected = 0;
    bool success = false;       ///< false when > t errors were present
  };

  /// Decode an n-byte received word, correcting up to t byte errors
  /// (Berlekamp-Massey + Chien search + Forney).
  DecodeResult decode(std::span<const std::uint8_t> received) const;

 private:
  std::size_t n_;
  std::size_t k_;
  int first_root_;
  Gf256 gf_;
  bytevec genpoly_;  // generator polynomial, degree 2t, genpoly_[0] = x^{2t} coeff
};

/// The DVB-T outer code: RS(204, 188), t = 8.
ReedSolomon make_dvb_rs();

}  // namespace ofdm::coding
