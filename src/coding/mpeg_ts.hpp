// MPEG-2 transport-stream framing — the payload substrate of the DVB-T
// family member. EN 300 744 operates on 188-byte TS packets: the energy
// dispersal randomizer runs over 8-packet groups with the first sync
// byte inverted (0x47 -> 0xB8) as the receiver's re-init marker.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace ofdm::coding {

inline constexpr std::size_t kTsPacketSize = 188;
inline constexpr std::uint8_t kTsSyncByte = 0x47;
inline constexpr std::uint8_t kTsInvertedSync = 0xB8;

/// Wrap an elementary byte stream into TS packets (4-byte header: sync,
/// PID, continuity counter; 184-byte payload, zero-padded at the end).
class TsPacketizer {
 public:
  explicit TsPacketizer(std::uint16_t pid = 0x100);

  /// Packetize a payload; output length is a multiple of 188.
  bytevec packetize(std::span<const std::uint8_t> payload);

  /// Extract the payload back (inverse of packetize; trailing padding
  /// zeros are kept — the caller knows the original length).
  static bytevec extract(std::span<const std::uint8_t> ts);

  /// Check sync bytes on every packet boundary.
  static bool sync_ok(std::span<const std::uint8_t> ts);

 private:
  std::uint16_t pid_;
  std::uint8_t continuity_ = 0;
};

/// EN 300 744 4.3.1 energy dispersal over a whole number of TS packets:
/// the PRBS (x^15+x^14+1, init 100101010000000) restarts every 8
/// packets; sync bytes are never randomized (the PRBS still advances
/// under them) and the first sync of each group is inverted. Applying
/// the function twice restores the input (involution).
bytevec ts_energy_dispersal(std::span<const std::uint8_t> ts);

/// Verify the group structure of a dispersed stream (inverted sync
/// every 8th packet, plain sync elsewhere).
bool dispersed_sync_ok(std::span<const std::uint8_t> ts);

}  // namespace ofdm::coding
