#include "coding/reed_solomon.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ofdm::coding {

Gf256::Gf256() {
  // Build exp/log tables from the primitive element alpha = 0x02.
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = i;
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  for (int i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  log_[0] = -1;
}

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[static_cast<std::size_t>(log_[a] + log_[b])];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) const {
  OFDM_REQUIRE(b != 0, "Gf256::div: division by zero");
  if (a == 0) return 0;
  return exp_[static_cast<std::size_t>(log_[a] - log_[b] + 255)];
}

std::uint8_t Gf256::inv(std::uint8_t a) const {
  OFDM_REQUIRE(a != 0, "Gf256::inv: zero has no inverse");
  return exp_[static_cast<std::size_t>(255 - log_[a])];
}

std::uint8_t Gf256::alpha_pow(int e) const {
  int r = e % 255;
  if (r < 0) r += 255;
  return exp_[static_cast<std::size_t>(r)];
}

int Gf256::log(std::uint8_t a) const {
  OFDM_REQUIRE(a != 0, "Gf256::log: log of zero");
  return log_[a];
}

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k, int first_root)
    : n_(n), k_(k), first_root_(first_root) {
  OFDM_REQUIRE(n <= 255 && k < n && (n - k) % 2 == 0 && k >= 1,
               "ReedSolomon: need k < n <= 255 with even parity count");
  // g(x) = prod_{i=0}^{2t-1} (x - alpha^{first_root+i}), highest degree
  // coefficient first.
  const std::size_t twot = n - k;
  genpoly_.assign(1, 1);
  for (std::size_t i = 0; i < twot; ++i) {
    const std::uint8_t root = gf_.alpha_pow(first_root + static_cast<int>(i));
    bytevec next(genpoly_.size() + 1, 0);
    for (std::size_t j = 0; j < genpoly_.size(); ++j) {
      next[j] ^= genpoly_[j];                       // * x
      next[j + 1] ^= gf_.mul(genpoly_[j], root);    // * root
    }
    genpoly_ = std::move(next);
  }
}

bytevec ReedSolomon::encode(std::span<const std::uint8_t> message) const {
  OFDM_REQUIRE_DIM(message.size() == k_,
                   "ReedSolomon::encode: message must be k bytes");
  const std::size_t twot = n_ - k_;
  // Systematic encoding: remainder of message(x) * x^{2t} mod g(x).
  bytevec rem(twot, 0);
  for (std::uint8_t m : message) {
    const std::uint8_t feedback = static_cast<std::uint8_t>(m ^ rem[0]);
    // Shift left by one and add feedback * g (skipping the monic term).
    for (std::size_t j = 0; j + 1 < twot; ++j) {
      rem[j] = static_cast<std::uint8_t>(
          rem[j + 1] ^ gf_.mul(feedback, genpoly_[j + 1]));
    }
    rem[twot - 1] = gf_.mul(feedback, genpoly_[twot]);
  }
  bytevec out(message.begin(), message.end());
  out.insert(out.end(), rem.begin(), rem.end());
  return out;
}

ReedSolomon::DecodeResult ReedSolomon::decode(
    std::span<const std::uint8_t> received) const {
  OFDM_REQUIRE_DIM(received.size() == n_,
                   "ReedSolomon::decode: received word must be n bytes");
  const std::size_t twot = n_ - k_;
  DecodeResult result;

  // Syndromes S_i = r(alpha^{first_root+i}). The shortened code behaves
  // as RS(255,...) with leading zeros, which do not affect evaluation.
  bytevec synd(twot, 0);
  bool all_zero = true;
  for (std::size_t i = 0; i < twot; ++i) {
    const std::uint8_t x = gf_.alpha_pow(first_root_ + static_cast<int>(i));
    std::uint8_t acc = 0;
    for (std::uint8_t r : received) {
      acc = static_cast<std::uint8_t>(gf_.mul(acc, x) ^ r);
    }
    synd[i] = acc;
    if (acc != 0) all_zero = false;
  }
  if (all_zero) {
    result.message.assign(received.begin(),
                          received.begin() + static_cast<std::ptrdiff_t>(k_));
    result.success = true;
    return result;
  }

  // Berlekamp-Massey: find the error locator polynomial lambda(x),
  // lowest-degree coefficient first (lambda[0] == 1).
  bytevec lambda{1};
  bytevec prev{1};
  std::uint8_t b = 1;
  std::size_t ll = 0;  // current number of assumed errors
  std::size_t m = 1;
  for (std::size_t r = 0; r < twot; ++r) {
    // Discrepancy.
    std::uint8_t delta = synd[r];
    for (std::size_t i = 1; i <= ll && i < lambda.size(); ++i) {
      delta = static_cast<std::uint8_t>(
          delta ^ gf_.mul(lambda[i], synd[r - i]));
    }
    if (delta == 0) {
      ++m;
      continue;
    }
    if (2 * ll <= r) {
      bytevec tmp = lambda;
      const std::uint8_t coeff = gf_.div(delta, b);
      if (lambda.size() < prev.size() + m) lambda.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        lambda[i + m] = static_cast<std::uint8_t>(
            lambda[i + m] ^ gf_.mul(coeff, prev[i]));
      }
      ll = r + 1 - ll;
      prev = std::move(tmp);
      b = delta;
      m = 1;
    } else {
      const std::uint8_t coeff = gf_.div(delta, b);
      if (lambda.size() < prev.size() + m) lambda.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        lambda[i + m] = static_cast<std::uint8_t>(
            lambda[i + m] ^ gf_.mul(coeff, prev[i]));
      }
      ++m;
    }
  }
  if (ll > t()) return result;  // uncorrectable

  // Chien search over the n_ positions of the (shortened) code word.
  // Position p (0-based from the first transmitted byte) corresponds to
  // the evaluation point alpha^{-(n_-1-p)}.
  std::vector<std::size_t> error_pos;
  for (std::size_t p = 0; p < n_; ++p) {
    const int power = static_cast<int>(n_) - 1 - static_cast<int>(p);
    const std::uint8_t xinv = gf_.alpha_pow(-power);
    // Evaluate lambda at x = xinv^{-1}... we need lambda(X^{-1}) == 0 for
    // error locator X = alpha^{power}; equivalently evaluate lambda at
    // alpha^{-power}.
    std::uint8_t acc = 0;
    for (std::size_t i = lambda.size(); i-- > 0;) {
      acc = static_cast<std::uint8_t>(gf_.mul(acc, xinv) ^ lambda[i]);
    }
    if (acc == 0) error_pos.push_back(p);
  }
  if (error_pos.size() != ll) return result;  // locator degree mismatch

  // Forney: omega(x) = [S(x) * lambda(x)] mod x^{2t};
  // error value e_p = X^{1-first_root} * omega(X^{-1}) / lambda'(X^{-1}).
  bytevec omega(twot, 0);
  for (std::size_t i = 0; i < twot; ++i) {
    std::uint8_t acc = 0;
    for (std::size_t j = 0; j <= i && j < lambda.size(); ++j) {
      acc = static_cast<std::uint8_t>(acc ^ gf_.mul(lambda[j], synd[i - j]));
    }
    omega[i] = acc;
  }

  bytevec corrected(received.begin(), received.end());
  for (std::size_t p : error_pos) {
    const int power = static_cast<int>(n_) - 1 - static_cast<int>(p);
    const std::uint8_t xinv = gf_.alpha_pow(-power);  // X^{-1}
    // omega(X^{-1})
    std::uint8_t om = 0;
    for (std::size_t i = omega.size(); i-- > 0;) {
      om = static_cast<std::uint8_t>(gf_.mul(om, xinv) ^ omega[i]);
    }
    // lambda'(X^{-1}): formal derivative keeps odd-power terms.
    std::uint8_t lp = 0;
    for (std::size_t i = 1; i < lambda.size(); i += 2) {
      // derivative coefficient of x^{i-1} is lambda[i] (char-2 field).
      std::uint8_t term = lambda[i];
      for (std::size_t j = 0; j + 1 < i; ++j) term = gf_.mul(term, xinv);
      lp = static_cast<std::uint8_t>(lp ^ term);
    }
    if (lp == 0) return result;  // Forney failure -> uncorrectable
    std::uint8_t mag = gf_.div(om, lp);
    // Root-offset correction for first_root != 1: multiply by X^{1-b0}.
    const int adjust = 1 - first_root_;
    if (adjust != 0) {
      mag = gf_.mul(mag, gf_.alpha_pow(adjust * power));
    }
    corrected[p] = static_cast<std::uint8_t>(corrected[p] ^ mag);
  }

  // Verify by recomputing syndromes on the corrected word.
  for (std::size_t i = 0; i < twot; ++i) {
    const std::uint8_t x = gf_.alpha_pow(first_root_ + static_cast<int>(i));
    std::uint8_t acc = 0;
    for (std::uint8_t r : corrected) {
      acc = static_cast<std::uint8_t>(gf_.mul(acc, x) ^ r);
    }
    if (acc != 0) return result;  // miscorrection guard
  }

  result.message.assign(corrected.begin(),
                        corrected.begin() + static_cast<std::ptrdiff_t>(k_));
  result.errors_corrected = error_pos.size();
  result.success = true;
  return result;
}

ReedSolomon make_dvb_rs() { return ReedSolomon(204, 188, /*first_root=*/0); }

}  // namespace ofdm::coding
