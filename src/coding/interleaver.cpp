#include "coding/interleaver.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace ofdm::coding {

PermutationInterleaver::PermutationInterleaver(
    std::vector<std::size_t> mapping)
    : map_(std::move(mapping)) {
  OFDM_REQUIRE(!map_.empty(), "PermutationInterleaver: empty mapping");
  // Verify the mapping is a bijection on [0, N).
  std::vector<std::uint8_t> seen(map_.size(), 0);
  for (std::size_t m : map_) {
    OFDM_REQUIRE(m < map_.size() && !seen[m],
                 "PermutationInterleaver: mapping is not a permutation");
    seen[m] = 1;
  }
}

void PermutationInterleaver::check_size(std::size_t n) const {
  OFDM_REQUIRE_DIM(n == map_.size(),
                   "PermutationInterleaver: block size mismatch");
}

PermutationInterleaver make_block_interleaver(std::size_t rows,
                                              std::size_t cols) {
  OFDM_REQUIRE(rows >= 1 && cols >= 1,
               "make_block_interleaver: rows/cols must be >= 1");
  std::vector<std::size_t> map(rows * cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    map[i] = c * rows + r;  // write row-wise, read column-wise
  }
  return PermutationInterleaver(std::move(map));
}

PermutationInterleaver make_wlan_interleaver(std::size_t n_cbps,
                                             std::size_t n_bpsc) {
  OFDM_REQUIRE(n_cbps % 16 == 0,
               "make_wlan_interleaver: N_CBPS must be divisible by 16");
  OFDM_REQUIRE(n_bpsc >= 1, "make_wlan_interleaver: N_BPSC must be >= 1");
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  std::vector<std::size_t> map(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    // First permutation: adjacent coded bits onto nonadjacent carriers.
    const std::size_t i = (n_cbps / 16) * (k % 16) + k / 16;
    // Second permutation: alternate onto less/more significant bits.
    const std::size_t j =
        s * (i / s) +
        (i + n_cbps - (16 * i) / n_cbps) % s;
    map[k] = j;
  }
  return PermutationInterleaver(std::move(map));
}

PermutationInterleaver make_random_interleaver(std::size_t n,
                                               std::uint64_t seed) {
  OFDM_REQUIRE(n >= 1, "make_random_interleaver: n must be >= 1");
  std::vector<std::size_t> map(n);
  std::iota(map.begin(), map.end(), std::size_t{0});
  // Self-contained xorshift64* so the permutation is stable regardless of
  // the library RNG (profiles persist these seeds).
  std::uint64_t s = seed ? seed : 0x2545F4914F6CDD1Dull;
  auto next = [&s]() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  };
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(next() % (i + 1));
    std::swap(map[i], map[j]);
  }
  return PermutationInterleaver(std::move(map));
}

ConvolutionalInterleaver::ConvolutionalInterleaver(std::size_t branches,
                                                   std::size_t depth,
                                                   bool deinterleave)
    : branches_(branches), depth_(depth), deinterleave_(deinterleave) {
  OFDM_REQUIRE(branches >= 1 && depth >= 1,
               "ConvolutionalInterleaver: branches/depth must be >= 1");
  lines_.resize(branches);
  heads_.assign(branches, 0);
  for (std::size_t j = 0; j < branches; ++j) {
    // Interleaver: branch j has delay j*M. Deinterleaver: (I-1-j)*M.
    const std::size_t delay =
        (deinterleave_ ? (branches - 1 - j) : j) * depth_;
    lines_[j].assign(std::max<std::size_t>(delay, 1), 0);
    // A zero-delay branch is modeled with a length-1 line used
    // pass-through (see process()).
  }
}

bytevec ConvolutionalInterleaver::process(std::span<const std::uint8_t> in) {
  bytevec out;
  out.reserve(in.size());
  for (std::uint8_t v : in) {
    const std::size_t j = branch_;
    const std::size_t delay =
        (deinterleave_ ? (branches_ - 1 - j) : j) * depth_;
    if (delay == 0) {
      out.push_back(v);
    } else {
      bytevec& line = lines_[j];
      std::size_t& head = heads_[j];
      out.push_back(line[head]);
      line[head] = v;
      head = (head + 1) % delay;
    }
    branch_ = (branch_ + 1) % branches_;
  }
  return out;
}

void ConvolutionalInterleaver::reset() {
  for (auto& line : lines_) std::fill(line.begin(), line.end(), 0);
  std::fill(heads_.begin(), heads_.end(), std::size_t{0});
  branch_ = 0;
}

}  // namespace ofdm::coding
