// Hard-decision Viterbi decoder for the convolutional codes in
// coding/convolutional.hpp. Used by the reference receivers to close the
// TX->RX loop and by the BER experiments.
#pragma once

#include <span>

#include "coding/convolutional.hpp"
#include "common/types.hpp"

namespace ofdm::coding {

/// Maximum-likelihood sequence decoder (hard decisions, Hamming metric).
///
/// Input symbols may be 0, 1 or kErasure (from depuncture()); erasures
/// contribute nothing to any branch metric.
class ViterbiDecoder {
 public:
  explicit ViterbiDecoder(ConvCode code);

  /// Decode a terminated code word (encoder used encode_terminated()):
  /// forces the end state to zero and strips the (K-1) tail bits.
  bitvec decode_terminated(std::span<const std::uint8_t> coded) const;

  /// Decode an unterminated code word: best end state wins, all decision
  /// bits are returned.
  bitvec decode(std::span<const std::uint8_t> coded) const;

  /// Soft-decision decoding from LLRs (convention: llr > 0 => coded bit
  /// 0 more likely; llr == 0 == erasure). Terminated code words.
  /// Typically worth ~2 dB over hard decisions on an AWGN channel.
  bitvec decode_soft_terminated(std::span<const double> llr) const;

  const ConvCode& code() const { return code_; }

 private:
  bitvec run(std::span<const std::uint8_t> coded, bool terminated) const;
  bitvec run_soft(std::span<const double> llr, bool terminated) const;

  ConvCode code_;
  // Precomputed per (state, input): next state and expected output bits.
  std::vector<std::uint32_t> next_state_;   // [state*2 + input]
  std::vector<std::uint32_t> out_bits_;     // packed expected outputs
};

}  // namespace ofdm::coding
