#include "coding/mpeg_ts.hpp"

#include "coding/lfsr.hpp"
#include "common/error.hpp"

namespace ofdm::coding {

TsPacketizer::TsPacketizer(std::uint16_t pid) : pid_(pid) {
  OFDM_REQUIRE(pid <= 0x1FFF, "TsPacketizer: PID is 13 bits");
}

bytevec TsPacketizer::packetize(std::span<const std::uint8_t> payload) {
  constexpr std::size_t kBody = kTsPacketSize - 4;
  const std::size_t packets = (payload.size() + kBody - 1) / kBody;
  bytevec out;
  out.reserve(std::max<std::size_t>(packets, 1) * kTsPacketSize);
  std::size_t pos = 0;
  for (std::size_t pkt = 0; pkt < std::max<std::size_t>(packets, 1);
       ++pkt) {
    out.push_back(kTsSyncByte);
    // Header: PUSI on the first packet, 13-bit PID, continuity counter.
    const std::uint8_t pusi = pkt == 0 ? 0x40 : 0x00;
    out.push_back(static_cast<std::uint8_t>(pusi | (pid_ >> 8)));
    out.push_back(static_cast<std::uint8_t>(pid_ & 0xFF));
    out.push_back(static_cast<std::uint8_t>(0x10 | continuity_));
    continuity_ = static_cast<std::uint8_t>((continuity_ + 1) & 0x0F);
    for (std::size_t i = 0; i < kBody; ++i) {
      out.push_back(pos < payload.size() ? payload[pos] : 0);
      ++pos;
    }
  }
  return out;
}

bytevec TsPacketizer::extract(std::span<const std::uint8_t> ts) {
  OFDM_REQUIRE_DIM(ts.size() % kTsPacketSize == 0,
                   "TsPacketizer::extract: not a whole packet count");
  bytevec payload;
  payload.reserve(ts.size() / kTsPacketSize * (kTsPacketSize - 4));
  for (std::size_t off = 0; off < ts.size(); off += kTsPacketSize) {
    OFDM_REQUIRE(ts[off] == kTsSyncByte,
                 "TsPacketizer::extract: lost sync");
    payload.insert(payload.end(),
                   ts.begin() + static_cast<std::ptrdiff_t>(off + 4),
                   ts.begin() + static_cast<std::ptrdiff_t>(
                                    off + kTsPacketSize));
  }
  return payload;
}

bool TsPacketizer::sync_ok(std::span<const std::uint8_t> ts) {
  if (ts.size() % kTsPacketSize != 0) return false;
  for (std::size_t off = 0; off < ts.size(); off += kTsPacketSize) {
    if (ts[off] != kTsSyncByte) return false;
  }
  return true;
}

namespace {
constexpr std::uint64_t kDispersalTaps =
    (std::uint64_t{1} << 14) | (std::uint64_t{1} << 13);

std::uint64_t dispersal_seed() {
  // init string (delay 1..15): 1,0,0,1,0,1,0,1,0,0,0,0,0,0,0
  std::uint64_t seed = 0;
  const int init[15] = {1, 0, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 15; ++i) {
    if (init[i]) seed |= std::uint64_t{1} << i;
  }
  return seed;
}

std::uint8_t prbs_byte(Lfsr& lfsr) {
  std::uint8_t b = 0;
  for (int i = 0; i < 8; ++i) {
    b = static_cast<std::uint8_t>((b << 1) | lfsr.step());
  }
  return b;
}
}  // namespace

bytevec ts_energy_dispersal(std::span<const std::uint8_t> ts) {
  OFDM_REQUIRE_DIM(ts.size() % kTsPacketSize == 0,
                   "ts_energy_dispersal: not a whole packet count");
  bytevec out(ts.begin(), ts.end());
  Lfsr lfsr(15, kDispersalTaps, dispersal_seed());
  const std::size_t packets = ts.size() / kTsPacketSize;
  for (std::size_t pkt = 0; pkt < packets; ++pkt) {
    const std::size_t base = pkt * kTsPacketSize;
    if (pkt % 8 == 0) {
      lfsr.reset(dispersal_seed());
      // Invert (or restore) the group-leading sync byte; the PRBS does
      // not advance under it.
      out[base] = static_cast<std::uint8_t>(out[base] ^
                                            (kTsSyncByte ^
                                             kTsInvertedSync));
    } else {
      // PRBS advances under non-leading sync bytes without applying.
      (void)prbs_byte(lfsr);
    }
    for (std::size_t i = 1; i < kTsPacketSize; ++i) {
      out[base + i] =
          static_cast<std::uint8_t>(out[base + i] ^ prbs_byte(lfsr));
    }
  }
  return out;
}

bool dispersed_sync_ok(std::span<const std::uint8_t> ts) {
  if (ts.size() % kTsPacketSize != 0) return false;
  const std::size_t packets = ts.size() / kTsPacketSize;
  for (std::size_t pkt = 0; pkt < packets; ++pkt) {
    const std::uint8_t want =
        pkt % 8 == 0 ? kTsInvertedSync : kTsSyncByte;
    if (ts[pkt * kTsPacketSize] != want) return false;
  }
  return true;
}

}  // namespace ofdm::coding
