// Linear-feedback shift registers and the scramblers built from them.
//
// Every standard in the OFDM family randomizes its bit stream with an
// additive (synchronous) scrambler defined by an LFSR polynomial; the
// Mother Model treats the polynomial, register length and seed as plain
// reconfiguration parameters.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace ofdm::coding {

/// Fibonacci LFSR over GF(2).
///
/// The polynomial is given by a tap mask: bit i set means the register
/// cell holding the input delayed by (i+1) steps feeds the XOR sum, so
/// x^7 + x^4 + 1 (the 802.11a scrambler) is mask (1<<6)|(1<<3).
class Lfsr {
 public:
  /// `degree` is the register length (1..63); `taps` the feedback mask;
  /// `seed` the initial register contents (bit i = cell with delay i+1).
  /// The seed must be non-zero or the sequence degenerates to all zeros.
  Lfsr(unsigned degree, std::uint64_t taps, std::uint64_t seed);

  /// Advance one step, returning the new feedback bit (== PRBS output).
  std::uint8_t step();

  /// Generate n PRBS bits.
  bitvec sequence(std::size_t n);

  /// Reset to a new seed.
  void reset(std::uint64_t seed);

  std::uint64_t state() const { return state_; }
  unsigned degree() const { return degree_; }

 private:
  unsigned degree_;
  std::uint64_t taps_;
  std::uint64_t state_;
};

/// Additive (synchronous) scrambler: out = in XOR PRBS. Descrambling is
/// the identical operation with the same seed, so one class serves both.
class Scrambler {
 public:
  Scrambler(unsigned degree, std::uint64_t taps, std::uint64_t seed);

  /// Scramble/descramble a bit stream (stateful across calls).
  bitvec process(std::span<const std::uint8_t> bits);

  /// Restart the PRBS from a seed (default: the construction seed).
  void reset();
  void reset(std::uint64_t seed);

 private:
  Lfsr lfsr_;
  std::uint64_t seed0_;
};

/// The IEEE 802.11a frame-synchronous scrambler, x^7 + x^4 + 1.
/// `seed` is the 7-bit initial state (Annex G example uses 1011101b).
Scrambler make_wlan_scrambler(std::uint64_t seed = 0x5D);

/// DVB-style energy-dispersal PRBS, x^15 + x^14 + 1, init 100101010000000b.
Scrambler make_dvb_scrambler();

/// HomePlug 1.0 data scrambler, x^10 + x^3 + 1, all-ones init.
Scrambler make_homeplug_scrambler();

}  // namespace ofdm::coding
