// Convolutional encoding with puncturing. The 802.11a/g, 802.16a, DVB-T
// and DAB members of the family all use the same industry-standard K=7
// mother code (171, 133 octal); the code rate is a reconfiguration
// parameter realized by puncturing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ofdm::coding {

/// Description of a rate-1/n convolutional code.
///
/// Generators use the textbook octal convention: for constraint length K,
/// bit (K-1) of a generator taps the current input bit (D^0) and bit 0
/// taps the oldest (D^{K-1}).
struct ConvCode {
  unsigned constraint_length = 7;
  std::vector<std::uint32_t> generators = {0133, 0171};

  unsigned num_outputs() const {
    return static_cast<unsigned>(generators.size());
  }
  std::size_t num_states() const {
    return std::size_t{1} << (constraint_length - 1);
  }
};

/// The 802.11a / DVB-T / DAB mother code: K=7, g = (133, 171) octal.
ConvCode k7_industry_code();

/// Puncturing pattern: a per-output-stream keep mask applied cyclically.
/// pattern[j][p] == 1 keeps output j at puncture phase p.
struct PuncturePattern {
  std::vector<std::vector<std::uint8_t>> keep;

  std::size_t period() const { return keep.empty() ? 0 : keep[0].size(); }
  /// Coded bits kept per period across all streams.
  std::size_t kept_per_period() const;
};

/// Rate 1/2 (no puncturing), 2/3 and 3/4 patterns from IEEE 802.11a-1999.
PuncturePattern puncture_none(unsigned num_outputs = 2);
PuncturePattern puncture_2_3();
PuncturePattern puncture_3_4();

/// Convolutional encoder. Stateless-per-call: encode() starts from the
/// zero state and the caller appends (K-1) tail bits if termination is
/// wanted (the standards do; see `encode_terminated`).
class ConvEncoder {
 public:
  explicit ConvEncoder(ConvCode code);

  /// Encode bits; output is interleaved across generator streams
  /// (A1 B1 A2 B2 ... for a rate-1/2 code).
  bitvec encode(std::span<const std::uint8_t> bits) const;

  /// Encode with (K-1) zero tail bits appended, driving the trellis back
  /// to the zero state.
  bitvec encode_terminated(std::span<const std::uint8_t> bits) const;

  const ConvCode& code() const { return code_; }

 private:
  ConvCode code_;
};

/// Apply a puncturing pattern to an encoder output stream.
bitvec puncture(std::span<const std::uint8_t> coded,
                const PuncturePattern& pattern);

/// Marks inserted by depuncture() where bits were stolen. The Viterbi
/// decoder treats this value as an erasure (no metric contribution).
inline constexpr std::uint8_t kErasure = 2;

/// Re-insert erasure marks so the stream regains mother-code geometry.
/// `coded_len_mother` is the unpunctured length the decoder expects.
bitvec depuncture(std::span<const std::uint8_t> punctured,
                  const PuncturePattern& pattern,
                  std::size_t coded_len_mother);

/// Soft-decision counterpart: stolen positions become LLR 0 (a perfect
/// erasure under the soft Viterbi's correlation metric).
std::vector<double> depuncture_soft(std::span<const double> punctured,
                                    const PuncturePattern& pattern,
                                    std::size_t coded_len_mother);

}  // namespace ofdm::coding
