#include "coding/crc.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace ofdm::coding {

namespace {
std::uint64_t reflect_bits(std::uint64_t v, unsigned width) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < width; ++i) {
    if (v & (std::uint64_t{1} << i)) {
      r |= std::uint64_t{1} << (width - 1 - i);
    }
  }
  return r;
}
}  // namespace

Crc::Crc(unsigned width, std::uint64_t poly, std::uint64_t init,
         bool reflect, std::uint64_t xorout)
    : width_(width), poly_(poly), init_(init), reflect_(reflect),
      xorout_(xorout) {
  OFDM_REQUIRE(width >= 1 && width <= 64, "Crc: width must be in 1..64");
}

std::uint64_t Crc::compute(std::span<const std::uint8_t> bytes) const {
  const bitvec bits = reflect_ ? bytes_to_bits_lsb(bytes)
                               : bytes_to_bits_msb(bytes);
  return compute_bits(bits);
}

std::uint64_t Crc::compute_bits(std::span<const std::uint8_t> bits) const {
  const std::uint64_t top = std::uint64_t{1} << (width_ - 1);
  const std::uint64_t mask =
      width_ == 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << width_) - 1;
  std::uint64_t reg = init_;
  for (std::uint8_t b : bits) {
    const bool in = (b & 1u) != 0;
    const bool msb = (reg & top) != 0;
    reg = (reg << 1) & mask;
    if (in != msb) reg ^= poly_;
  }
  if (reflect_) reg = reflect_bits(reg, width_);
  return (reg ^ xorout_) & mask;
}

Crc make_crc32() {
  return Crc(32, 0x04C11DB7ull, 0xFFFFFFFFull, /*reflect=*/true,
             0xFFFFFFFFull);
}

Crc make_crc16_ccitt() {
  return Crc(16, 0x1021ull, 0xFFFFull, /*reflect=*/false, 0xFFFFull);
}

Crc make_crc8() { return Crc(8, 0xD5ull, 0x00ull, /*reflect=*/false, 0x00ull); }

}  // namespace ofdm::coding
