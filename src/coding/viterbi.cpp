#include "coding/viterbi.hpp"

#include <bit>
#include <limits>

#include "common/error.hpp"

namespace ofdm::coding {

ViterbiDecoder::ViterbiDecoder(ConvCode code) : code_(std::move(code)) {
  const std::size_t states = code_.num_states();
  const unsigned kk = code_.constraint_length;
  next_state_.resize(states * 2);
  out_bits_.resize(states * 2);
  for (std::size_t s = 0; s < states; ++s) {
    for (std::uint32_t b = 0; b < 2; ++b) {
      const std::uint32_t window =
          (b << (kk - 1)) | static_cast<std::uint32_t>(s);
      next_state_[s * 2 + b] = window >> 1;
      std::uint32_t packed = 0;
      for (std::size_t j = 0; j < code_.generators.size(); ++j) {
        packed |= static_cast<std::uint32_t>(
                      std::popcount(window & code_.generators[j]) & 1)
                  << j;
      }
      out_bits_[s * 2 + b] = packed;
    }
  }
}

bitvec ViterbiDecoder::decode_terminated(
    std::span<const std::uint8_t> coded) const {
  bitvec full = run(coded, /*terminated=*/true);
  const unsigned tail = code_.constraint_length - 1;
  OFDM_REQUIRE_DIM(full.size() >= tail,
                   "decode_terminated: code word shorter than tail");
  full.resize(full.size() - tail);
  return full;
}

bitvec ViterbiDecoder::decode(std::span<const std::uint8_t> coded) const {
  return run(coded, /*terminated=*/false);
}

bitvec ViterbiDecoder::decode_soft_terminated(
    std::span<const double> llr) const {
  bitvec full = run_soft(llr, /*terminated=*/true);
  const unsigned tail = code_.constraint_length - 1;
  OFDM_REQUIRE_DIM(full.size() >= tail,
                   "decode_soft_terminated: code word shorter than tail");
  full.resize(full.size() - tail);
  return full;
}

bitvec ViterbiDecoder::run_soft(std::span<const double> llr,
                                bool terminated) const {
  const unsigned n_out = code_.num_outputs();
  OFDM_REQUIRE_DIM(llr.size() % n_out == 0,
                   "Viterbi: LLR length not a multiple of output count");
  const std::size_t steps = llr.size() / n_out;
  const std::size_t states = code_.num_states();
  constexpr double kInf = 1e300;

  std::vector<double> metric(states, kInf);
  std::vector<double> next_metric(states, kInf);
  metric[0] = 0.0;

  std::vector<std::uint8_t> survivor_bit(steps * states);
  std::vector<std::uint32_t> survivor_prev(steps * states);

  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    for (std::size_t s = 0; s < states; ++s) {
      if (metric[s] >= kInf) continue;
      for (std::uint32_t b = 0; b < 2; ++b) {
        const std::uint32_t ns = next_state_[s * 2 + b];
        const std::uint32_t expected = out_bits_[s * 2 + b];
        // Correlation metric: expected bit 1 pays +llr, bit 0 pays
        // -llr; minimizing the sum is maximum-likelihood for
        // llr = log P(0)/P(1).
        double bm = 0.0;
        for (unsigned j = 0; j < n_out; ++j) {
          const double l = llr[t * n_out + j];
          bm += ((expected >> j) & 1u) ? l : -l;
        }
        const double cand = metric[s] + bm;
        if (cand < next_metric[ns]) {
          next_metric[ns] = cand;
          survivor_bit[t * states + ns] = static_cast<std::uint8_t>(b);
          survivor_prev[t * states + ns] = static_cast<std::uint32_t>(s);
        }
      }
    }
    metric.swap(next_metric);
  }

  std::size_t best = 0;
  if (!terminated) {
    for (std::size_t s = 1; s < states; ++s) {
      if (metric[s] < metric[best]) best = s;
    }
  }

  bitvec decoded(steps);
  std::size_t s = best;
  for (std::size_t t = steps; t-- > 0;) {
    decoded[t] = survivor_bit[t * states + s];
    s = survivor_prev[t * states + s];
  }
  return decoded;
}

bitvec ViterbiDecoder::run(std::span<const std::uint8_t> coded,
                           bool terminated) const {
  const unsigned n_out = code_.num_outputs();
  OFDM_REQUIRE_DIM(coded.size() % n_out == 0,
                   "Viterbi: coded length not a multiple of output count");
  const std::size_t steps = coded.size() / n_out;
  const std::size_t states = code_.num_states();
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max() / 2;

  std::vector<std::uint32_t> metric(states, kInf);
  std::vector<std::uint32_t> next_metric(states, kInf);
  metric[0] = 0;  // encoders start from the zero state

  // survivors[t*states + s] = input bit of the winning branch into s at t.
  std::vector<std::uint8_t> survivor_bit(steps * states);
  std::vector<std::uint32_t> survivor_prev(steps * states);

  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    for (std::size_t s = 0; s < states; ++s) {
      if (metric[s] >= kInf) continue;
      for (std::uint32_t b = 0; b < 2; ++b) {
        const std::uint32_t ns = next_state_[s * 2 + b];
        const std::uint32_t expected = out_bits_[s * 2 + b];
        std::uint32_t bm = 0;
        for (unsigned j = 0; j < n_out; ++j) {
          const std::uint8_t r = coded[t * n_out + j];
          if (r == kErasure) continue;
          bm += ((expected >> j) & 1u) != (r & 1u);
        }
        const std::uint32_t cand = metric[s] + bm;
        if (cand < next_metric[ns]) {
          next_metric[ns] = cand;
          survivor_bit[t * states + ns] = static_cast<std::uint8_t>(b);
          survivor_prev[t * states + ns] = static_cast<std::uint32_t>(s);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Pick the end state.
  std::size_t best = 0;
  if (terminated) {
    best = 0;
  } else {
    for (std::size_t s = 1; s < states; ++s) {
      if (metric[s] < metric[best]) best = s;
    }
  }

  // Traceback.
  bitvec decoded(steps);
  std::size_t s = best;
  for (std::size_t t = steps; t-- > 0;) {
    decoded[t] = survivor_bit[t * states + s];
    s = survivor_prev[t * states + s];
  }
  return decoded;
}

}  // namespace ofdm::coding
