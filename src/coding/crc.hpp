// Cyclic redundancy checks. Frame check sequences appear throughout the
// family (802.11 FCS, DAB FIB CRC, HomePlug frame control check).
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace ofdm::coding {

/// Bit-serial CRC engine, parameterized like the Rocksoft model:
/// polynomial (without the leading term), width, init, reflect, xorout.
class Crc {
 public:
  Crc(unsigned width, std::uint64_t poly, std::uint64_t init,
      bool reflect, std::uint64_t xorout);

  /// CRC over a byte stream.
  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

  /// CRC over an unpacked bit stream (MSB-first semantics when
  /// reflect == false; LSB-first when reflect == true).
  std::uint64_t compute_bits(std::span<const std::uint8_t> bits) const;

  unsigned width() const { return width_; }

 private:
  unsigned width_;
  std::uint64_t poly_;
  std::uint64_t init_;
  bool reflect_;
  std::uint64_t xorout_;
};

/// IEEE CRC-32 (802.11 FCS): poly 0x04C11DB7 reflected, init/xorout all-ones.
Crc make_crc32();

/// CCITT CRC-16 (DAB FIB): poly 0x1021, init 0xFFFF, output inverted.
Crc make_crc16_ccitt();

/// CRC-8 (DVB-ish header checks): poly 0xD5.
Crc make_crc8();

}  // namespace ofdm::coding
