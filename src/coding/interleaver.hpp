// Interleavers used across the OFDM family:
//  * block (row/column) interleaving — generic workhorse;
//  * the two-permutation 802.11a bit interleaver;
//  * convolutional (Forney) byte interleaving — DVB outer interleaver;
//  * seeded pseudo-random cell interleaving — DRM-style QAM cell shuffle.
//
// All are expressed as permutations (or delay structures) with exact
// inverses so the reference receivers can undo them losslessly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ofdm::coding {

/// An arbitrary permutation pi of block size N: out[pi[i]] = in[i].
class PermutationInterleaver {
 public:
  explicit PermutationInterleaver(std::vector<std::size_t> mapping);

  std::size_t block_size() const { return map_.size(); }

  /// Interleave one block (input length must equal block_size()).
  template <typename T>
  std::vector<T> interleave(std::span<const T> in) const {
    check_size(in.size());
    std::vector<T> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[map_[i]] = in[i];
    return out;
  }

  /// Exact inverse of interleave().
  template <typename T>
  std::vector<T> deinterleave(std::span<const T> in) const {
    check_size(in.size());
    std::vector<T> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[map_[i]];
    return out;
  }

  const std::vector<std::size_t>& mapping() const { return map_; }

 private:
  void check_size(std::size_t n) const;
  std::vector<std::size_t> map_;
};

/// Row/column block interleaver: written row-wise, read column-wise.
PermutationInterleaver make_block_interleaver(std::size_t rows,
                                              std::size_t cols);

/// IEEE 802.11a-1999 17.3.5.6 bit interleaver for one OFDM symbol.
/// `n_cbps` = coded bits per symbol, `n_bpsc` = bits per subcarrier.
PermutationInterleaver make_wlan_interleaver(std::size_t n_cbps,
                                             std::size_t n_bpsc);

/// Deterministic seeded pseudo-random permutation (Fisher-Yates driven by
/// a fixed xorshift stream) — used as the DRM-style cell interleaver.
PermutationInterleaver make_random_interleaver(std::size_t n,
                                               std::uint64_t seed);

/// Convolutional (Forney) interleaver with I branches of depth M:
/// branch j delays its bytes by j*M. The matching deinterleaver applies
/// the complementary delays; end-to-end latency is I*(I-1)*M symbols.
class ConvolutionalInterleaver {
 public:
  /// `deinterleave == true` builds the complementary (receiver) side.
  ConvolutionalInterleaver(std::size_t branches, std::size_t depth,
                           bool deinterleave = false);

  /// Process a stream chunk; returns the same number of symbols (the
  /// leading output is delay-line fill, zeros until the pipe is primed).
  bytevec process(std::span<const std::uint8_t> in);

  /// Total interleaver+deinterleaver latency in symbols.
  std::size_t end_to_end_delay() const {
    return branches_ * (branches_ - 1) * depth_;
  }

  void reset();

 private:
  std::size_t branches_;
  std::size_t depth_;
  bool deinterleave_;
  std::vector<bytevec> lines_;       // one FIFO per branch
  std::vector<std::size_t> heads_;   // circular indices
  std::size_t branch_ = 0;           // commutator position
};

}  // namespace ofdm::coding
