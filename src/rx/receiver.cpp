// The generic Receiver is a thin compatibility wrapper over the RX
// Mother Model (rx::MotherReceiver) — same aligned-burst contract and
// results, with the demodulation core owned by src/rx/mother.
#include "rx/receiver.hpp"

#include "rx/mother/mother_rx.hpp"

namespace ofdm::rx {

struct Receiver::State {
  MotherReceiver rx;
};

Receiver::Receiver(core::OfdmParams params)
    : state_(std::make_unique<State>(
          State{MotherReceiver(std::move(params))})) {}

Receiver::~Receiver() = default;
Receiver::Receiver(Receiver&&) noexcept = default;
Receiver& Receiver::operator=(Receiver&&) noexcept = default;

const core::OfdmParams& Receiver::params() const {
  return state_->rx.params();
}

void Receiver::set_equalizer(cvec per_bin) {
  state_->rx.set_equalizer(std::move(per_bin));
}

void Receiver::clear_equalizer() { state_->rx.clear_equalizer(); }

void Receiver::enable_pilot_phase_tracking(bool on) {
  state_->rx.set_pilot_tracking(on);
}

void Receiver::enable_soft_decoding(bool on) {
  state_->rx.set_demap(on ? mapping::DemapMode::kSoft
                          : mapping::DemapMode::kHard);
}

std::size_t Receiver::payload_offset() const {
  return state_->rx.payload_offset();
}

cvec Receiver::estimate_equalizer(std::span<const cplx> burst) const {
  return state_->rx.estimate_equalizer(burst);
}

std::vector<cvec> Receiver::extract_data_tones(std::span<const cplx> burst,
                                               std::size_t n_symbols) const {
  return state_->rx.extract_data_tones(burst, n_symbols);
}

Receiver::Result Receiver::demodulate(std::span<const cplx> burst,
                                      std::size_t payload_bits) const {
  MotherReceiver::Result r = state_->rx.demodulate(burst, payload_bits);
  Result out;
  out.payload = std::move(r.payload);
  out.symbols = r.symbols;
  out.rs_blocks_failed = r.rs_blocks_failed;
  return out;
}

}  // namespace ofdm::rx
