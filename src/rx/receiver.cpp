#include "rx/receiver.hpp"

#include <algorithm>
#include <cmath>

#include "coding/interleaver.hpp"
#include "coding/lfsr.hpp"
#include "coding/reed_solomon.hpp"
#include "coding/viterbi.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/pilots.hpp"
#include "core/preamble.hpp"
#include "dsp/fft.hpp"

namespace ofdm::rx {

using core::MappingKind;
using core::OfdmParams;
using core::PreambleKind;
using core::ToneLayout;

struct Receiver::State {
  OfdmParams params;
  ToneLayout layout;
  dsp::Fft fft{64};
  double scale = 1.0;
  std::optional<mapping::Constellation> constellation;
  std::optional<mapping::DmtMapper> dmt;
  std::optional<coding::PermutationInterleaver> bit_interleaver;
  std::optional<coding::PermutationInterleaver> cell_interleaver;
  std::optional<coding::ViterbiDecoder> viterbi;
  std::optional<coding::ReedSolomon> rs;
  std::size_t cbps = 0;
  std::size_t preamble_len = 0;
  cvec equalizer;  // empty = identity
  bool pilot_tracking = false;
  bool soft_decoding = false;

  bool soft_path_active() const {
    return soft_decoding && params.fec.conv_enabled &&
           params.mapping == MappingKind::kFixed;
  }

  // Common phase error from the pilots of one demodulated symbol:
  // returns the unit rotor that re-aligns the data tones.
  cplx pilot_rotor(const cvec& bins, const cvec& expected) const {
    cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < layout.pilot_bins.size(); ++i) {
      acc += bins[layout.pilot_bins[i]] * std::conj(expected[i]);
    }
    const double mag = std::abs(acc);
    if (mag < 1e-12) return cplx{1.0, 0.0};
    return std::conj(acc / mag);
  }
};

namespace {

// Coded-chain length bookkeeping mirroring Transmitter::coded_length().
struct ChainLengths {
  std::size_t scrambled_bits;   ///< payload length (scrambling preserves it)
  std::size_t rs_out_bits;      ///< after outer coding (== input if no RS)
  std::size_t punctured_bits;   ///< after inner coding (== rs_out if none)
  std::size_t mother_bits;      ///< unpunctured inner-code length
};

ChainLengths chain_lengths(const OfdmParams& p, std::size_t payload_bits) {
  ChainLengths len{};
  len.scrambled_bits = payload_bits;
  std::size_t bits = payload_bits;
  if (p.fec.rs_enabled) {
    const std::size_t bytes = (bits + 7) / 8;
    const std::size_t blocks =
        std::max<std::size_t>((bytes + p.fec.rs_k - 1) / p.fec.rs_k, 1);
    bits = blocks * p.fec.rs_n * 8;
  }
  len.rs_out_bits = bits;
  if (p.fec.conv_enabled) {
    const std::size_t steps = bits + p.fec.conv.constraint_length - 1;
    len.mother_bits = steps * p.fec.conv.generators.size();
    const auto& pat = p.fec.puncture;
    const std::size_t period = pat.period();
    std::size_t coded = (steps / period) * pat.kept_per_period();
    for (std::size_t r = 0; r < steps % period; ++r) {
      for (const auto& stream : pat.keep) coded += stream[r];
    }
    bits = coded;
  } else {
    len.mother_bits = bits;
  }
  len.punctured_bits = bits;
  return len;
}

}  // namespace

Receiver::Receiver(core::OfdmParams params)
    : state_(std::make_unique<State>()) {
  core::validate(params);
  State& s = *state_;
  s.params = std::move(params);
  const OfdmParams& p = s.params;
  s.layout = core::make_tone_layout(p);
  s.fft = dsp::Fft(p.fft_size);
  s.cbps = core::coded_bits_per_symbol(p);

  std::size_t used = s.layout.used_tones();
  if (p.hermitian) used *= 2;
  s.scale = static_cast<double>(p.fft_size) /
            std::sqrt(static_cast<double>(used));

  switch (p.mapping) {
    case MappingKind::kFixed:
      s.constellation = mapping::Constellation::make(p.scheme);
      break;
    case MappingKind::kDifferential:
      break;  // demapper is per-burst state, created in demodulate()
    case MappingKind::kBitTable:
      s.dmt.emplace(p.bit_table);
      break;
  }

  switch (p.interleaver.kind) {
    case core::InterleaverKind::kNone:
      break;
    case core::InterleaverKind::kWlan:
      s.bit_interleaver = coding::make_wlan_interleaver(
          s.cbps, mapping::bits_per_symbol(p.scheme));
      break;
    case core::InterleaverKind::kBlock:
      s.bit_interleaver = coding::make_block_interleaver(
          p.interleaver.rows, s.cbps / p.interleaver.rows);
      break;
    case core::InterleaverKind::kCell:
      s.cell_interleaver = coding::make_random_interleaver(
          s.layout.data_bins.size(), p.interleaver.seed);
      break;
  }

  if (p.fec.conv_enabled) s.viterbi.emplace(p.fec.conv);
  if (p.fec.rs_enabled) s.rs.emplace(p.fec.rs_n, p.fec.rs_k);

  switch (p.frame.preamble) {
    case PreambleKind::kNone:
      s.preamble_len = 0;
      break;
    case PreambleKind::kWlan:
      s.preamble_len = 320;
      break;
    case PreambleKind::kPhaseReference:
      s.preamble_len = p.symbol_len();
      break;
  }
}

Receiver::~Receiver() = default;
Receiver::Receiver(Receiver&&) noexcept = default;
Receiver& Receiver::operator=(Receiver&&) noexcept = default;

const core::OfdmParams& Receiver::params() const { return state_->params; }

void Receiver::set_equalizer(cvec per_bin) {
  OFDM_REQUIRE_DIM(per_bin.size() == state_->params.fft_size,
                   "Receiver::set_equalizer: one coefficient per bin");
  state_->equalizer = std::move(per_bin);
}

void Receiver::clear_equalizer() { state_->equalizer.clear(); }

void Receiver::enable_pilot_phase_tracking(bool on) {
  state_->pilot_tracking = on;
}

void Receiver::enable_soft_decoding(bool on) {
  state_->soft_decoding = on;
}

std::size_t Receiver::payload_offset() const {
  return state_->params.frame.null_samples + state_->preamble_len;
}

namespace {

// FFT window of the symbol starting at `offset`, descaled and equalized.
cvec demod_bins(const OfdmParams& p, const dsp::Fft& fft, double scale,
                const cvec& equalizer, std::span<const cplx> burst,
                std::size_t offset) {
  const std::size_t n = p.fft_size;
  const std::size_t cp = p.cp_len;
  OFDM_REQUIRE_DIM(offset + cp + n <= burst.size(),
                   "Receiver: burst shorter than expected");
  const std::span<const cplx> window = burst.subspan(offset + cp, n);
  cvec bins(n);
  if (p.hermitian) {
    // Real-baseband standards (DMT/powerline) keep the imaginary lanes
    // bitwise 0.0 through loopback and real-only channels, where the
    // half-size real-input plan kind does the same transform at ~N/2
    // cost. The check must be exact — forward_real discards imaginary
    // parts — so any complex impairment (CFO, fading) falls back to the
    // full complex FFT.
    bool exactly_real = true;
    for (const cplx& v : window) {
      if (v.imag() != 0.0) {
        exactly_real = false;
        break;
      }
    }
    if (exactly_real) {
      fft.forward_real(window, bins);
    } else {
      fft.forward(window, bins);
    }
  } else {
    fft.forward(window, bins);
  }
  const double inv = 1.0 / scale;
  for (cplx& v : bins) v *= inv;
  if (!equalizer.empty()) {
    for (std::size_t i = 0; i < bins.size(); ++i) bins[i] *= equalizer[i];
  }
  return bins;
}

}  // namespace

cvec Receiver::estimate_equalizer(std::span<const cplx> burst) const {
  const State& s = *state_;
  const OfdmParams& p = s.params;
  cvec eq(p.fft_size, cplx{1.0, 0.0});

  switch (p.frame.preamble) {
    case PreambleKind::kNone:
      return eq;
    case PreambleKind::kWlan: {
      // Average both long training symbols (T1 at 192, T2 at 256 into
      // the burst) for a 3 dB better estimate. No CP handling: the LTF
      // symbols are plain 64-sample repetitions.
      const std::size_t t1 = p.frame.null_samples + 160 + 32;
      OFDM_REQUIRE_DIM(t1 + 128 <= burst.size(),
                       "estimate_equalizer: burst too short for LTF");
      // Cheap per-call plan: the 64-point tables are shared through the
      // process-wide plan cache with every other WLAN-geometry user.
      dsp::Fft fft64(64);
      const cvec r1 = fft64.forward(burst.subspan(t1, 64));
      const cvec r2 = fft64.forward(burst.subspan(t1 + 64, 64));
      const cvec known = core::wlan_ltf_bins();
      for (std::size_t bin = 0; bin < 64; ++bin) {
        const cplx avg = (r1[bin] + r2[bin]) / (2.0 * s.scale);
        if (std::abs(known[bin]) > 0.0 && std::abs(avg) > 1e-12) {
          eq[bin] = known[bin] / avg;
        }
      }
      return eq;
    }
    case PreambleKind::kPhaseReference: {
      const std::size_t off = p.frame.null_samples;
      const cvec rx =
          demod_bins(p, s.fft, s.scale, {}, burst, off);
      const cvec ref_data =
          core::phase_reference_values(p, s.layout.data_bins.size());
      for (std::size_t i = 0; i < s.layout.data_bins.size(); ++i) {
        const std::size_t bin = s.layout.data_bins[i];
        if (std::abs(rx[bin]) > 1e-12) eq[bin] = ref_data[i] / rx[bin];
      }
      for (std::size_t i = 0; i < s.layout.pilot_bins.size(); ++i) {
        const std::size_t bin = s.layout.pilot_bins[i];
        if (std::abs(rx[bin]) > 1e-12) {
          eq[bin] = p.pilots.base_values[i] / rx[bin];
        }
      }
      return eq;
    }
  }
  return eq;
}

std::vector<cvec> Receiver::extract_data_tones(std::span<const cplx> burst,
                                               std::size_t n_symbols) const {
  const State& s = *state_;
  const OfdmParams& p = s.params;
  std::vector<cvec> out;
  out.reserve(n_symbols);
  core::PilotGenerator pilots(p.pilots, s.layout.pilot_bins.size());
  std::size_t offset = payload_offset();
  for (std::size_t sym = 0; sym < n_symbols; ++sym) {
    const cvec bins = demod_bins(p, s.fft, s.scale, s.equalizer,
                                 burst, offset);
    const cvec expected_pilots = pilots.next_symbol();
    const cplx rotor = s.pilot_tracking
                           ? s.pilot_rotor(bins, expected_pilots)
                           : cplx{1.0, 0.0};
    cvec data(s.layout.data_bins.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = bins[s.layout.data_bins[i]] * rotor;
    }
    if (s.cell_interleaver) {
      data = s.cell_interleaver->deinterleave(std::span<const cplx>(data));
    }
    out.push_back(std::move(data));
    offset += p.symbol_len();
  }
  return out;
}

Receiver::Result Receiver::demodulate(std::span<const cplx> burst,
                                      std::size_t payload_bits) const {
  const State& s = *state_;
  const OfdmParams& p = s.params;
  const ChainLengths len = chain_lengths(p, payload_bits);
  const std::size_t min_syms = p.frame.symbols_per_frame;
  const std::size_t n_symbols = std::max(
      min_syms, (len.punctured_bits + s.cbps - 1) / s.cbps);

  Result result;
  result.symbols = n_symbols;

  // Differential demapper seeded from the *received* phase reference so
  // a static channel phase cancels out.
  std::optional<mapping::DifferentialMapper> diff;
  if (p.mapping == MappingKind::kDifferential) {
    diff.emplace(p.diff_kind, s.layout.data_bins.size());
    const std::size_t ref_off = p.frame.null_samples;
    const cvec bins = demod_bins(p, s.fft, s.scale, s.equalizer,
                                 burst, ref_off);
    cvec ref(s.layout.data_bins.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ref[i] = bins[s.layout.data_bins[i]];
    }
    diff->reset(ref);
  }

  // 1. Tones -> coded bits (or LLRs on the soft path).
  const bool soft = s.soft_path_active();
  bitvec coded;
  rvec soft_coded;
  coded.reserve(soft ? 0 : n_symbols * s.cbps);
  if (soft) soft_coded.reserve(n_symbols * s.cbps);
  core::PilotGenerator pilots(p.pilots, s.layout.pilot_bins.size());
  std::size_t offset = payload_offset();
  for (std::size_t sym = 0; sym < n_symbols; ++sym) {
    const cvec bins = demod_bins(p, s.fft, s.scale, s.equalizer,
                                 burst, offset);
    const cvec expected_pilots = pilots.next_symbol();
    const cplx rotor = s.pilot_tracking
                           ? s.pilot_rotor(bins, expected_pilots)
                           : cplx{1.0, 0.0};
    cvec data(s.layout.data_bins.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = bins[s.layout.data_bins[i]] * rotor;
    }
    if (s.cell_interleaver) {
      data = s.cell_interleaver->deinterleave(std::span<const cplx>(data));
    }

    if (soft) {
      // Max-log LLRs weighted by the per-tone noise after equalization:
      // a one-tap equalizer multiplies tone k's noise variance by
      // |eq_k|^2, so confident-looking bins on enhanced-noise tones
      // must be de-weighted (the soft Viterbi is otherwise
      // scale-invariant).
      rvec sym_llr;
      sym_llr.reserve(s.cbps);
      for (std::size_t i = 0; i < data.size(); ++i) {
        double noise_var = 1.0;
        if (!s.equalizer.empty()) {
          // Cell interleaving permutes tones; index the equalizer
          // through the same permutation the data went through.
          const std::size_t tone =
              s.cell_interleaver ? s.cell_interleaver->mapping()[i] : i;
          noise_var = std::norm(s.equalizer[s.layout.data_bins[tone]]);
          if (noise_var < 1e-12) noise_var = 1e-12;
        }
        s.constellation->demap_soft(data[i], noise_var, sym_llr);
      }
      if (s.bit_interleaver) {
        sym_llr = s.bit_interleaver->deinterleave(
            std::span<const double>(sym_llr));
      }
      soft_coded.insert(soft_coded.end(), sym_llr.begin(),
                        sym_llr.end());
      offset += p.symbol_len();
      continue;
    }

    bitvec sym_bits;
    switch (p.mapping) {
      case MappingKind::kFixed:
        sym_bits = s.constellation->demap_all(data);
        break;
      case MappingKind::kDifferential:
        sym_bits = diff->demap_symbol(data);
        break;
      case MappingKind::kBitTable:
        sym_bits = s.dmt->demap_symbol(data);
        break;
    }
    if (s.bit_interleaver) {
      sym_bits = s.bit_interleaver->deinterleave(
          std::span<const std::uint8_t>(sym_bits));
    }
    coded.insert(coded.end(), sym_bits.begin(), sym_bits.end());
    offset += p.symbol_len();
  }

  // 2. Inner code.
  bitvec bits;
  if (soft) {
    soft_coded.resize(len.punctured_bits);  // drop symbol padding
    const rvec mother = coding::depuncture_soft(
        soft_coded, p.fec.puncture, len.mother_bits);
    bits = s.viterbi->decode_soft_terminated(mother);
  } else if (p.fec.conv_enabled) {
    coded.resize(len.punctured_bits);
    const bitvec mother =
        coding::depuncture(coded, p.fec.puncture, len.mother_bits);
    bits = s.viterbi->decode_terminated(mother);
  } else {
    coded.resize(len.punctured_bits);
    bits = std::move(coded);
  }
  bits.resize(len.rs_out_bits);

  // 3. Outer code.
  if (p.fec.rs_enabled) {
    const bytevec rx_bytes = bits_to_bytes_msb(bits);
    bytevec message;
    message.reserve(rx_bytes.size() / s.rs->n() * s.rs->k());
    for (std::size_t off = 0; off < rx_bytes.size(); off += s.rs->n()) {
      const auto block = std::span<const std::uint8_t>(rx_bytes)
                             .subspan(off, s.rs->n());
      auto decoded = s.rs->decode(block);
      if (!decoded.success) {
        ++result.rs_blocks_failed;
        // Fall back to the systematic part.
        decoded.message.assign(block.begin(),
                               block.begin() + static_cast<std::ptrdiff_t>(
                                                   s.rs->k()));
      }
      message.insert(message.end(), decoded.message.begin(),
                     decoded.message.end());
    }
    bits = bytes_to_bits_msb(message);
  }
  bits.resize(len.scrambled_bits);

  // 4. Descramble.
  if (p.scrambler.enabled) {
    coding::Scrambler scr(p.scrambler.degree, p.scrambler.taps,
                          p.scrambler.seed);
    bits = scr.process(bits);
  }
  result.payload = std::move(bits);
  return result;
}

}  // namespace ofdm::rx
