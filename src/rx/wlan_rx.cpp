#include "rx/wlan_rx.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/preamble.hpp"
#include "dsp/fft.hpp"
#include "rx/sync.hpp"

namespace ofdm::rx {

namespace {

// Derotate a stream by -2*pi*cfo*t (undo a carrier frequency offset).
cvec derotate(std::span<const cplx> x, double cfo_hz, double fs) {
  cvec out(x.size());
  const double step = -kTwoPi * cfo_hz / fs;
  double phase = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * cplx{std::cos(phase), std::sin(phase)};
    phase += step;
    if (phase > kPi) phase -= kTwoPi;
    if (phase < -kPi) phase += kTwoPi;
  }
  return out;
}

// The 64-sample time-domain long training symbol at data scaling.
cvec ltf_time_symbol() {
  // Cheap per-call plan: tables come from the process-wide plan cache.
  dsp::Fft fft(64);
  cvec t = fft.inverse(core::wlan_ltf_bins());
  const double scale = 64.0 / std::sqrt(52.0);
  for (cplx& v : t) v *= scale;
  return t;
}

}  // namespace

WlanPacketReceiver::WlanPacketReceiver(core::OfdmParams params)
    : params_(std::move(params)) {
  OFDM_REQUIRE(params_.fft_size == 64 &&
                   params_.frame.preamble == core::PreambleKind::kWlan,
               "WlanPacketReceiver: needs the 802.11a burst structure");
}

std::optional<std::size_t> WlanPacketReceiver::detect(
    std::span<const cplx> stream) const {
  const rvec metric = stf_metric(stream);
  // Require the plateau to persist for half the STF to reject noise
  // spikes.
  constexpr std::size_t kPlateau = 80;
  std::size_t run = 0;
  for (std::size_t i = 0; i < metric.size(); ++i) {
    if (metric[i] > threshold_) {
      if (++run >= kPlateau) return i + 1 - run;
    } else {
      run = 0;
    }
  }
  return std::nullopt;
}

WlanRxResult WlanPacketReceiver::receive(std::span<const cplx> stream,
                                         std::size_t payload_bits) const {
  WlanRxResult result;
  const double fs = params_.sample_rate;

  // 1. Packet detection on the raw stream.
  const auto d0 = detect(stream);
  if (!d0) return result;
  result.detected = true;

  // 2. Coarse CFO from the STF's 16-sample periodicity. The correlator
  // x(t) x*(t+16) rotates by +2*pi*f*16/fs for CFO f, and estimate_cfo
  // returns arg/(2*pi*lag)*fs, i.e. +f directly.
  const std::size_t stf = *d0;
  if (stf + 160 > stream.size()) return result;
  result.coarse_cfo_hz = estimate_cfo(stream, stf + 16, 16, 96, fs);

  // 3. Coarse-correct, then fine timing by LTF cross-correlation.
  cvec corrected = derotate(stream.subspan(stf),
                            result.coarse_cfo_hz, fs);
  const cvec ltf = ltf_time_symbol();
  // T1 nominally starts 192 samples into the burst; search +-24.
  std::size_t best = 0;
  double best_mag = -1.0;
  const std::size_t lo = 192 > 24 ? 192 - 24 : 0;
  for (std::size_t d = lo; d + 64 <= corrected.size() && d <= 192 + 24;
       ++d) {
    cplx corr{0.0, 0.0};
    for (std::size_t i = 0; i < 64; ++i) {
      corr += corrected[d + i] * std::conj(ltf[i]);
    }
    const double mag = std::abs(corr);
    if (mag > best_mag) {
      best_mag = mag;
      best = d;
    }
  }
  const std::size_t t1 = best;
  if (t1 + 128 + params_.symbol_len() > corrected.size()) return result;
  result.burst_start = stf + t1 - 192;

  // 4. Fine CFO from the two repeated long symbols.
  result.fine_cfo_hz = estimate_cfo(corrected, t1, 64, 64, fs);
  corrected = derotate(stream.subspan(result.burst_start),
                       result.coarse_cfo_hz + result.fine_cfo_hz, fs);

  // 5. Channel estimation averaged over T1 and T2. Per-call plan
  // construction shares the cached 64-point tables.
  dsp::Fft fft(64);
  const double scale = 64.0 / std::sqrt(52.0);
  const cvec known = core::wlan_ltf_bins();
  const cvec r1 =
      fft.forward(std::span<const cplx>(corrected).subspan(192, 64));
  const cvec r2 =
      fft.forward(std::span<const cplx>(corrected).subspan(256, 64));
  cvec eq(64, cplx{1.0, 0.0});
  result.channel.assign(64, cplx{0.0, 0.0});
  for (std::size_t bin = 0; bin < 64; ++bin) {
    if (std::abs(known[bin]) == 0.0) continue;
    const cplx h = (r1[bin] + r2[bin]) / (2.0 * scale * known[bin]);
    result.channel[bin] = h;
    if (std::abs(h) > 1e-12) eq[bin] = 1.0 / h;
  }

  // 6/7. Generic pipeline with the estimated equalizer and pilot-based
  // common-phase-error tracking (absorbs residual CFO).
  Receiver rx(params_);
  rx.set_equalizer(std::move(eq));
  rx.enable_pilot_phase_tracking(true);
  auto decoded = rx.demodulate(corrected, payload_bits);
  result.payload = std::move(decoded.payload);
  result.symbols = decoded.symbols;
  return result;
}

}  // namespace ofdm::rx
