#include "rx/sync.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ofdm::rx {

TimingEstimate cp_timing(std::span<const cplx> samples,
                         std::size_t fft_size, std::size_t cp_len,
                         double sample_rate) {
  OFDM_REQUIRE_DIM(samples.size() >= fft_size + cp_len,
                   "cp_timing: need at least one full symbol");
  TimingEstimate best;
  const std::size_t last = samples.size() - fft_size - cp_len;
  for (std::size_t d = 0; d <= last; ++d) {
    cplx corr{0.0, 0.0};
    double e1 = 0.0;
    double e2 = 0.0;
    for (std::size_t i = 0; i < cp_len; ++i) {
      const cplx a = samples[d + i];
      const cplx b = samples[d + i + fft_size];
      // conj(early) * late: a CFO of +f rotates this by +2*pi*f*N/fs,
      // so the estimate below is signed correctly.
      corr += std::conj(a) * b;
      e1 += std::norm(a);
      e2 += std::norm(b);
    }
    const double denom = std::sqrt(e1 * e2);
    const double metric = denom > 0.0 ? std::abs(corr) / denom : 0.0;
    if (metric > best.metric) {
      best.metric = metric;
      best.offset = d;
      // Phase of the correlation encodes the CFO over one FFT length.
      best.cfo_hz = std::arg(corr) * sample_rate /
                    (kTwoPi * static_cast<double>(fft_size));
    }
  }
  return best;
}

rvec stf_metric(std::span<const cplx> samples) {
  constexpr std::size_t kLag = 16;
  if (samples.size() < 2 * kLag) return {};
  rvec m(samples.size() - 2 * kLag, 0.0);
  for (std::size_t d = 0; d < m.size(); ++d) {
    cplx corr{0.0, 0.0};
    double energy = 0.0;
    for (std::size_t i = 0; i < kLag; ++i) {
      corr += samples[d + i] * std::conj(samples[d + i + kLag]);
      energy += std::norm(samples[d + i + kLag]);
    }
    m[d] = energy > 0.0 ? std::norm(corr) / (energy * energy) : 0.0;
  }
  return m;
}

double estimate_cfo(std::span<const cplx> samples, std::size_t offset,
                    std::size_t period, std::size_t span_len,
                    double sample_rate) {
  OFDM_REQUIRE_DIM(offset + span_len + period <= samples.size(),
                   "estimate_cfo: window out of range");
  cplx corr{0.0, 0.0};
  for (std::size_t i = 0; i < span_len; ++i) {
    // conj(early) * late rotates by +2*pi*f*period/fs for CFO +f.
    corr += std::conj(samples[offset + i]) * samples[offset + i + period];
  }
  return std::arg(corr) * sample_rate /
         (kTwoPi * static_cast<double>(period));
}

}  // namespace ofdm::rx
