// Complete 802.11a acquisition receiver.
//
// The generic rx::Receiver assumes a perfectly aligned burst; this
// receiver performs the full acquisition chain a real RF front-end
// needs, making the co-simulation experiments end-to-end realistic:
//
//   1. packet detection      — STF 16-sample autocorrelation plateau
//   2. coarse CFO            — STF autocorrelation phase (±625 kHz range)
//   3. fine timing           — cross-correlation against the known LTF
//   4. fine CFO              — LTF 64-sample autocorrelation (±156 kHz)
//   5. channel estimation    — averaged over both long training symbols
//   6. per-symbol tracking   — common phase error from the four pilots
//   7. demap / deinterleave / Viterbi / descramble via the generic chain
#pragma once

#include <optional>

#include "core/params.hpp"
#include "rx/receiver.hpp"

namespace ofdm::rx {

struct WlanRxResult {
  bool detected = false;
  std::size_t burst_start = 0;   ///< estimated index of the STF start
  double coarse_cfo_hz = 0.0;
  double fine_cfo_hz = 0.0;
  cvec channel;                  ///< per-bin estimate (64 entries)
  bitvec payload;
  std::size_t symbols = 0;
};

class WlanPacketReceiver {
 public:
  /// `params` must be an 802.11a/g profile (64-point geometry with the
  /// WLAN preamble).
  explicit WlanPacketReceiver(core::OfdmParams params);

  /// Detection threshold on the normalized STF plateau metric.
  void set_detection_threshold(double m) { threshold_ = m; }

  /// Process a sample stream containing (at most) one burst at an
  /// unknown offset with unknown CFO; returns the decoded payload.
  WlanRxResult receive(std::span<const cplx> stream,
                       std::size_t payload_bits) const;

 private:
  std::optional<std::size_t> detect(std::span<const cplx> stream) const;

  core::OfdmParams params_;
  double threshold_ = 0.7;
};

}  // namespace ofdm::rx
