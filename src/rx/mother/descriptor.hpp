// Human-readable description of the receiver instance a given OfdmParams
// reconfigures the RX Mother Model into: which sync front-end, channel
// estimator, demapper, interleaver and FEC decoders the chain engages.
// Backs `ofdm_campaign --list-rx` and the per-standard coverage tests.
#pragma once

#include <string>

#include "core/params.hpp"

namespace ofdm::rx {

struct RxDescriptor {
  std::string sync;         ///< "stf-plateau" | "cp-correlation" | "none"
  std::string equalizer;    ///< "ltf-average" | "phase-reference" | "none"
  std::string demapper;     ///< constellation / differential / bit-table
  std::string interleaver;  ///< "wlan" | "block RxC" | "cell" | "none"
  std::string inner_code;   ///< "conv K=k R=a/b" | "none"
  std::string outer_code;   ///< "RS(n,k)" | "none"
  bool soft_capable = false;  ///< soft demap + soft Viterbi available
  std::string chain;        ///< the full block order, arrow-joined
};

/// Describe the receiver the RX Mother Model instantiates for `params`.
RxDescriptor describe_receiver(const core::OfdmParams& params);

}  // namespace ofdm::rx
