#include "rx/mother/descriptor.hpp"

#include <sstream>

namespace ofdm::rx {

using core::OfdmParams;

namespace {

std::string diff_kind_name(mapping::DiffKind k) {
  switch (k) {
    case mapping::DiffKind::kDbpsk: return "DBPSK";
    case mapping::DiffKind::kDqpsk: return "DQPSK";
    case mapping::DiffKind::kPi4Dqpsk: return "pi/4-DQPSK";
  }
  return "?";
}

std::string demapper_name(const OfdmParams& p) {
  switch (p.mapping) {
    case core::MappingKind::kFixed:
      return "fixed " + mapping::scheme_name(p.scheme);
    case core::MappingKind::kDifferential:
      return "differential " + diff_kind_name(p.diff_kind);
    case core::MappingKind::kBitTable:
      return "bit-table DMT";
  }
  return "?";
}

std::string interleaver_name(const OfdmParams& p,
                             std::size_t cbps) {
  std::ostringstream os;
  switch (p.interleaver.kind) {
    case core::InterleaverKind::kNone:
      return "none";
    case core::InterleaverKind::kWlan:
      os << "wlan(" << cbps << ")";
      return os.str();
    case core::InterleaverKind::kBlock:
      os << "block " << p.interleaver.rows << "x"
         << cbps / p.interleaver.rows;
      return os.str();
    case core::InterleaverKind::kCell:
      return "cell";
  }
  return "?";
}

std::string inner_code_name(const OfdmParams& p) {
  if (!p.fec.conv_enabled) return "none";
  std::ostringstream os;
  os << "conv K=" << p.fec.conv.constraint_length << " R=";
  const auto& pat = p.fec.puncture;
  const std::size_t streams = p.fec.conv.generators.size();
  if (pat.period() == 0 ||
      pat.kept_per_period() == pat.period() * streams) {
    os << "1/" << streams;
  } else {
    os << pat.period() << "/" << pat.kept_per_period();
  }
  return os.str();
}

std::string outer_code_name(const OfdmParams& p) {
  if (!p.fec.rs_enabled) return "none";
  std::ostringstream os;
  os << "RS(" << p.fec.rs_n << "," << p.fec.rs_k << ")";
  return os.str();
}

}  // namespace

RxDescriptor describe_receiver(const OfdmParams& params) {
  RxDescriptor d;
  switch (params.frame.preamble) {
    case core::PreambleKind::kNone:
      d.sync = params.cp_len > 0 ? "cp-correlation" : "none";
      d.equalizer = "none";
      break;
    case core::PreambleKind::kWlan:
      d.sync = "stf-plateau";
      d.equalizer = "ltf-average";
      break;
    case core::PreambleKind::kPhaseReference:
      d.sync = params.cp_len > 0 ? "cp-correlation" : "none";
      d.equalizer = "phase-reference";
      break;
  }
  const std::size_t cbps = core::coded_bits_per_symbol(params);
  d.demapper = demapper_name(params);
  d.interleaver = interleaver_name(params, cbps);
  d.inner_code = inner_code_name(params);
  d.outer_code = outer_code_name(params);
  d.soft_capable = params.fec.conv_enabled &&
                   params.mapping == core::MappingKind::kFixed;

  std::ostringstream chain;
  chain << "sync[" << d.sync << "] -> cp-strip -> fft("
        << params.fft_size << ") -> eq[" << d.equalizer << "] -> demap["
        << d.demapper << "]";
  if (d.interleaver != "none") {
    chain << " -> deintlv[" << d.interleaver << "]";
  }
  if (d.inner_code != "none") {
    chain << " -> viterbi[" << d.inner_code
          << (d.soft_capable ? ", soft-capable]" : "]");
  }
  if (d.outer_code != "none") chain << " -> rs[" << d.outer_code << "]";
  if (params.scrambler.enabled) chain << " -> descramble";
  d.chain = chain.str();
  return d;
}

}  // namespace ofdm::rx
