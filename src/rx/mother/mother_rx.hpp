// The RX Mother Model: the receiver counterpart of core::Transmitter.
//
// One parameter-driven receiver family — sync -> CP removal -> FFT ->
// equalization -> (hard|soft) demap -> deinterleave -> depuncture ->
// soft-decision Viterbi and/or Reed-Solomon decode -> descramble —
// reconfigured from the same OfdmParams that drive the TX side, so any
// member of the ten-standard family is an instance of it. The generic
// rx::Receiver is a thin compatibility wrapper over this class.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "coding/interleaver.hpp"
#include "coding/reed_solomon.hpp"
#include "coding/viterbi.hpp"
#include "core/params.hpp"
#include "dsp/fft.hpp"
#include "rx/mother/rx_mode.hpp"
#include "rx/sync.hpp"

namespace ofdm::rx {

struct RxOptions {
  RxMode mode = RxMode::kCoded;
  /// kSoft engages max-log LLR demapping + soft Viterbi on standards
  /// where the soft path applies (fixed constellation with an inner
  /// convolutional code); elsewhere the hard path is kept silently.
  mapping::DemapMode demap = mapping::DemapMode::kHard;
  bool pilot_tracking = false;
};

/// Timing/CFO acquisition report from synchronize().
struct SyncReport {
  std::size_t offset = 0;    ///< estimated start of the burst's payload ramp
  double metric = 0.0;       ///< normalized correlation peak in [0, 1]
  double cfo_hz = 0.0;       ///< fractional CFO estimate
  bool used_preamble = false;  ///< STF plateau (true) vs CP correlation
};

class MotherReceiver {
 public:
  explicit MotherReceiver(core::OfdmParams params, RxOptions options = {});

  const core::OfdmParams& params() const { return params_; }
  const RxOptions& options() const { return options_; }

  void set_mode(RxMode m) { options_.mode = m; }
  void set_demap(mapping::DemapMode m) { options_.demap = m; }
  void set_pilot_tracking(bool on) { options_.pilot_tracking = on; }

  /// One-tap frequency-domain equalizer, one coefficient per FFT bin
  /// (natural order). Received tones are *multiplied* by it.
  void set_equalizer(cvec per_bin);
  void clear_equalizer() { equalizer_.clear(); }

  /// Tone-domain noise variance used to normalize soft LLRs
  /// (LLR = (d1^2 - d0^2)/sigma_tone^2, further weighted per tone by
  /// |eq_k|^2). Defaults to 1.0; the max-log Viterbi is scale-invariant,
  /// so this matters to anything consuming *absolute* LLRs.
  void set_noise_floor(double tone_noise_var);

  /// Convenience: derive the tone-domain floor from the time-domain
  /// per-sample complex noise variance sigma2 (the AWGN block's power),
  /// folding in the demodulator's FFT descale.
  void set_noise_from_sample_variance(double sigma2);

  /// True when demodulate() will take the LLR + soft-Viterbi path.
  bool soft_path_active() const;

  /// Estimate an equalizer from the burst's own training section (the
  /// 802.11a LTF or the phase-reference symbol). Returns the per-bin
  /// coefficients; does not install them.
  cvec estimate_equalizer(std::span<const cplx> burst) const;

  /// Acquire burst timing (and a fractional CFO estimate) from a sample
  /// stream: Schmidl&Cox STF plateau for WLAN-preamble standards, CP
  /// correlation everywhere else. The returned offset points at the
  /// start of the burst (null samples included), suitable for
  /// `stream.subspan(offset)` into demodulate().
  SyncReport synchronize(std::span<const cplx> stream,
                         double sample_rate) const;

  struct Result {
    bitvec payload;   ///< decoded payload (kCoded; empty in kUncoded)
    bitvec raw_bits;  ///< pre-FEC hard bits, symbols*cbps (kUncoded)
    std::size_t symbols = 0;
    std::size_t rs_blocks_failed = 0;  ///< uncorrectable outer blocks
  };

  /// Demodulate a burst produced by Transmitter::modulate() for
  /// `payload_bits` payload bits, honoring options().mode.
  Result demodulate(std::span<const cplx> burst,
                    std::size_t payload_bits) const;

  /// Equalized constellation-domain data cells per payload symbol —
  /// the input to EVM measurements.
  std::vector<cvec> extract_data_tones(std::span<const cplx> burst,
                                       std::size_t n_symbols) const;

  /// Sample offset of the first payload symbol within a burst.
  std::size_t payload_offset() const;

 private:
  cvec demod_bins(std::span<const cplx> burst, std::size_t offset,
                  bool equalized) const;
  cplx pilot_rotor(const cvec& bins, const cvec& expected) const;
  void extract_symbol(const cvec& bins, const cvec& expected_pilots,
                      cvec& data) const;
  void soft_demap_symbol(const cvec& data, rvec& noise_scratch,
                         rvec& llr_out) const;

  core::OfdmParams params_;
  RxOptions options_;
  core::ToneLayout layout_;
  dsp::Fft fft_{64};
  double scale_ = 1.0;
  double noise_floor_ = 1.0;
  std::optional<mapping::Constellation> constellation_;
  std::optional<mapping::DmtMapper> dmt_;
  std::optional<coding::PermutationInterleaver> bit_interleaver_;
  std::optional<coding::PermutationInterleaver> cell_interleaver_;
  std::optional<coding::ViterbiDecoder> viterbi_;
  std::optional<coding::ReedSolomon> rs_;
  std::size_t cbps_ = 0;
  std::size_t preamble_len_ = 0;
  cvec equalizer_;  // empty = identity
};

}  // namespace ofdm::rx
