#include "rx/mother/mother_rx.hpp"

#include <algorithm>
#include <cmath>

#include "coding/lfsr.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/pilots.hpp"
#include "core/preamble.hpp"

namespace ofdm::rx {

using core::MappingKind;
using core::OfdmParams;
using core::PreambleKind;

std::string rx_mode_name(RxMode m) {
  switch (m) {
    case RxMode::kCoded: return "coded";
    case RxMode::kUncoded: return "uncoded";
  }
  return "?";
}

std::optional<RxMode> rx_mode_from_name(std::string_view name) {
  if (name == "coded") return RxMode::kCoded;
  if (name == "uncoded") return RxMode::kUncoded;
  return std::nullopt;
}

namespace {

// Coded-chain length bookkeeping mirroring Transmitter::coded_length().
struct ChainLengths {
  std::size_t scrambled_bits;   ///< payload length (scrambling preserves it)
  std::size_t rs_out_bits;      ///< after outer coding (== input if no RS)
  std::size_t punctured_bits;   ///< after inner coding (== rs_out if none)
  std::size_t mother_bits;      ///< unpunctured inner-code length
};

ChainLengths chain_lengths(const OfdmParams& p, std::size_t payload_bits) {
  ChainLengths len{};
  len.scrambled_bits = payload_bits;
  std::size_t bits = payload_bits;
  if (p.fec.rs_enabled) {
    const std::size_t bytes = (bits + 7) / 8;
    const std::size_t blocks =
        std::max<std::size_t>((bytes + p.fec.rs_k - 1) / p.fec.rs_k, 1);
    bits = blocks * p.fec.rs_n * 8;
  }
  len.rs_out_bits = bits;
  if (p.fec.conv_enabled) {
    const std::size_t steps = bits + p.fec.conv.constraint_length - 1;
    len.mother_bits = steps * p.fec.conv.generators.size();
    const auto& pat = p.fec.puncture;
    const std::size_t period = pat.period();
    std::size_t coded = (steps / period) * pat.kept_per_period();
    for (std::size_t r = 0; r < steps % period; ++r) {
      for (const auto& stream : pat.keep) coded += stream[r];
    }
    bits = coded;
  } else {
    len.mother_bits = bits;
  }
  len.punctured_bits = bits;
  return len;
}

}  // namespace

MotherReceiver::MotherReceiver(core::OfdmParams params, RxOptions options)
    : params_(std::move(params)), options_(options) {
  core::validate(params_);
  const OfdmParams& p = params_;
  layout_ = core::make_tone_layout(p);
  fft_ = dsp::Fft(p.fft_size);
  cbps_ = core::coded_bits_per_symbol(p);

  std::size_t used = layout_.used_tones();
  if (p.hermitian) used *= 2;
  scale_ = static_cast<double>(p.fft_size) /
           std::sqrt(static_cast<double>(used));

  switch (p.mapping) {
    case MappingKind::kFixed:
      constellation_ = mapping::Constellation::make(p.scheme);
      break;
    case MappingKind::kDifferential:
      break;  // demapper is per-burst state, created in demodulate()
    case MappingKind::kBitTable:
      dmt_.emplace(p.bit_table);
      break;
  }

  switch (p.interleaver.kind) {
    case core::InterleaverKind::kNone:
      break;
    case core::InterleaverKind::kWlan:
      bit_interleaver_ = coding::make_wlan_interleaver(
          cbps_, mapping::bits_per_symbol(p.scheme));
      break;
    case core::InterleaverKind::kBlock:
      bit_interleaver_ = coding::make_block_interleaver(
          p.interleaver.rows, cbps_ / p.interleaver.rows);
      break;
    case core::InterleaverKind::kCell:
      cell_interleaver_ = coding::make_random_interleaver(
          layout_.data_bins.size(), p.interleaver.seed);
      break;
  }

  if (p.fec.conv_enabled) viterbi_.emplace(p.fec.conv);
  if (p.fec.rs_enabled) rs_.emplace(p.fec.rs_n, p.fec.rs_k);

  switch (p.frame.preamble) {
    case PreambleKind::kNone:
      preamble_len_ = 0;
      break;
    case PreambleKind::kWlan:
      preamble_len_ = 320;
      break;
    case PreambleKind::kPhaseReference:
      preamble_len_ = p.symbol_len();
      break;
  }
}

void MotherReceiver::set_equalizer(cvec per_bin) {
  OFDM_REQUIRE_DIM(per_bin.size() == params_.fft_size,
                   "MotherReceiver::set_equalizer: one coefficient per bin");
  equalizer_ = std::move(per_bin);
}

void MotherReceiver::set_noise_floor(double tone_noise_var) {
  OFDM_REQUIRE(tone_noise_var > 0.0,
               "MotherReceiver::set_noise_floor: variance must be positive");
  noise_floor_ = tone_noise_var;
}

void MotherReceiver::set_noise_from_sample_variance(double sigma2) {
  OFDM_REQUIRE(sigma2 >= 0.0,
               "MotherReceiver::set_noise_from_sample_variance: "
               "variance must be non-negative");
  // An unnormalized N-point forward FFT of white noise with per-sample
  // variance sigma2 has per-bin variance N*sigma2; the demodulator then
  // divides by scale_, so the tone-domain floor is N*sigma2/scale_^2.
  const double n = static_cast<double>(params_.fft_size);
  const double floor = n * sigma2 / (scale_ * scale_);
  noise_floor_ = std::max(floor, 1e-12);
}

bool MotherReceiver::soft_path_active() const {
  return options_.demap == mapping::DemapMode::kSoft &&
         options_.mode == RxMode::kCoded && params_.fec.conv_enabled &&
         params_.mapping == MappingKind::kFixed;
}

std::size_t MotherReceiver::payload_offset() const {
  return params_.frame.null_samples + preamble_len_;
}

// FFT window of the symbol starting at `offset`, descaled and (when
// `equalized`) multiplied by the installed one-tap equalizer.
cvec MotherReceiver::demod_bins(std::span<const cplx> burst,
                                std::size_t offset, bool equalized) const {
  const OfdmParams& p = params_;
  const std::size_t n = p.fft_size;
  const std::size_t cp = p.cp_len;
  OFDM_REQUIRE_DIM(offset + cp + n <= burst.size(),
                   "MotherReceiver: burst shorter than expected");
  const std::span<const cplx> window = burst.subspan(offset + cp, n);
  cvec bins(n);
  if (p.hermitian) {
    // Real-baseband standards (DMT/powerline) keep the imaginary lanes
    // bitwise 0.0 through loopback and real-only channels, where the
    // half-size real-input plan kind does the same transform at ~N/2
    // cost. The check must be exact — forward_real discards imaginary
    // parts — so any complex impairment (CFO, fading) falls back to the
    // full complex FFT.
    bool exactly_real = true;
    for (const cplx& v : window) {
      if (v.imag() != 0.0) {
        exactly_real = false;
        break;
      }
    }
    if (exactly_real) {
      fft_.forward_real(window, bins);
    } else {
      fft_.forward(window, bins);
    }
  } else {
    fft_.forward(window, bins);
  }
  const double inv = 1.0 / scale_;
  for (cplx& v : bins) v *= inv;
  if (equalized && !equalizer_.empty()) {
    for (std::size_t i = 0; i < bins.size(); ++i) bins[i] *= equalizer_[i];
  }
  return bins;
}

// Common phase error from the pilots of one demodulated symbol:
// returns the unit rotor that re-aligns the data tones.
cplx MotherReceiver::pilot_rotor(const cvec& bins,
                                 const cvec& expected) const {
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < layout_.pilot_bins.size(); ++i) {
    acc += bins[layout_.pilot_bins[i]] * std::conj(expected[i]);
  }
  const double mag = std::abs(acc);
  if (mag < 1e-12) return cplx{1.0, 0.0};
  return std::conj(acc / mag);
}

// Data cells of one symbol: pilot derotation, data-bin gather, cell
// deinterleave.
void MotherReceiver::extract_symbol(const cvec& bins,
                                    const cvec& expected_pilots,
                                    cvec& data) const {
  const cplx rotor = options_.pilot_tracking
                         ? pilot_rotor(bins, expected_pilots)
                         : cplx{1.0, 0.0};
  data.resize(layout_.data_bins.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = bins[layout_.data_bins[i]] * rotor;
  }
  if (cell_interleaver_) {
    data = cell_interleaver_->deinterleave(std::span<const cplx>(data));
  }
}

// Max-log LLRs for one symbol's data cells, weighted by the per-tone
// noise after equalization: a one-tap equalizer multiplies tone k's
// noise variance by |eq_k|^2, so confident-looking bins on
// enhanced-noise tones must be de-weighted. The whole symbol goes
// through the SIMD demap_soft kernel in one batch.
void MotherReceiver::soft_demap_symbol(const cvec& data,
                                       rvec& noise_scratch,
                                       rvec& llr_out) const {
  noise_scratch.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    double noise_var = noise_floor_;
    if (!equalizer_.empty()) {
      // Cell interleaving permutes tones; index the equalizer through
      // the same permutation the data went through.
      const std::size_t tone =
          cell_interleaver_ ? cell_interleaver_->mapping()[i] : i;
      noise_var *= std::norm(equalizer_[layout_.data_bins[tone]]);
    }
    noise_scratch[i] = std::max(noise_var, 1e-12);
  }
  constellation_->demap_soft_into(data, noise_scratch, llr_out);
}

cvec MotherReceiver::estimate_equalizer(std::span<const cplx> burst) const {
  const OfdmParams& p = params_;
  cvec eq(p.fft_size, cplx{1.0, 0.0});

  switch (p.frame.preamble) {
    case PreambleKind::kNone:
      return eq;
    case PreambleKind::kWlan: {
      // Average both long training symbols (T1 at 192, T2 at 256 into
      // the burst) for a 3 dB better estimate. No CP handling: the LTF
      // symbols are plain 64-sample repetitions.
      const std::size_t t1 = p.frame.null_samples + 160 + 32;
      OFDM_REQUIRE_DIM(t1 + 128 <= burst.size(),
                       "estimate_equalizer: burst too short for LTF");
      // Cheap per-call plan: the 64-point tables are shared through the
      // process-wide plan cache with every other WLAN-geometry user.
      dsp::Fft fft64(64);
      const cvec r1 = fft64.forward(burst.subspan(t1, 64));
      const cvec r2 = fft64.forward(burst.subspan(t1 + 64, 64));
      const cvec known = core::wlan_ltf_bins();
      for (std::size_t bin = 0; bin < 64; ++bin) {
        const cplx avg = (r1[bin] + r2[bin]) / (2.0 * scale_);
        if (std::abs(known[bin]) > 0.0 && std::abs(avg) > 1e-12) {
          eq[bin] = known[bin] / avg;
        }
      }
      return eq;
    }
    case PreambleKind::kPhaseReference: {
      const std::size_t off = p.frame.null_samples;
      const cvec rx = demod_bins(burst, off, /*equalized=*/false);
      const cvec ref_data =
          core::phase_reference_values(p, layout_.data_bins.size());
      for (std::size_t i = 0; i < layout_.data_bins.size(); ++i) {
        const std::size_t bin = layout_.data_bins[i];
        if (std::abs(rx[bin]) > 1e-12) eq[bin] = ref_data[i] / rx[bin];
      }
      for (std::size_t i = 0; i < layout_.pilot_bins.size(); ++i) {
        const std::size_t bin = layout_.pilot_bins[i];
        if (std::abs(rx[bin]) > 1e-12) {
          eq[bin] = p.pilots.base_values[i] / rx[bin];
        }
      }
      return eq;
    }
  }
  return eq;
}

SyncReport MotherReceiver::synchronize(std::span<const cplx> stream,
                                       double sample_rate) const {
  const OfdmParams& p = params_;
  SyncReport report;
  if (p.frame.preamble == PreambleKind::kWlan) {
    // Schmidl&Cox plateau on the STF's 16-sample periodicity; require
    // the plateau to persist for half the STF to reject noise spikes.
    const rvec metric = stf_metric(stream);
    constexpr double kThreshold = 0.7;
    constexpr std::size_t kPlateau = 80;
    std::size_t run = 0;
    for (std::size_t i = 0; i < metric.size(); ++i) {
      if (metric[i] > kThreshold) {
        if (++run >= kPlateau) {
          const std::size_t stf = i + 1 - run;
          report.used_preamble = true;
          report.metric = metric[i];
          report.offset =
              stf >= p.frame.null_samples ? stf - p.frame.null_samples : 0;
          if (stf + 16 + 96 + 16 <= stream.size()) {
            report.cfo_hz =
                estimate_cfo(stream, stf + 16, 16, 96, sample_rate);
          }
          return report;
        }
      } else {
        run = 0;
      }
    }
    return report;  // no plateau: metric stays 0
  }
  // Everywhere else: cyclic-prefix correlation. The first strict
  // maximum locks the earliest symbol boundary, which for a clean burst
  // is the first (preamble or payload) OFDM symbol — null guard samples
  // carry no CP energy, so they never win.
  if (p.cp_len == 0 ||
      stream.size() < p.fft_size + p.cp_len) {
    return report;
  }
  const TimingEstimate t =
      cp_timing(stream, p.fft_size, p.cp_len, sample_rate);
  report.metric = t.metric;
  report.cfo_hz = t.cfo_hz;
  report.offset = t.offset >= p.frame.null_samples
                      ? t.offset - p.frame.null_samples
                      : 0;
  return report;
}

std::vector<cvec> MotherReceiver::extract_data_tones(
    std::span<const cplx> burst, std::size_t n_symbols) const {
  std::vector<cvec> out;
  out.reserve(n_symbols);
  core::PilotGenerator pilots(params_.pilots, layout_.pilot_bins.size());
  std::size_t offset = payload_offset();
  for (std::size_t sym = 0; sym < n_symbols; ++sym) {
    const cvec bins = demod_bins(burst, offset, /*equalized=*/true);
    cvec data;
    extract_symbol(bins, pilots.next_symbol(), data);
    out.push_back(std::move(data));
    offset += params_.symbol_len();
  }
  return out;
}

MotherReceiver::Result MotherReceiver::demodulate(
    std::span<const cplx> burst, std::size_t payload_bits) const {
  const OfdmParams& p = params_;
  const ChainLengths len = chain_lengths(p, payload_bits);
  const std::size_t min_syms = p.frame.symbols_per_frame;
  const std::size_t n_symbols = std::max(
      min_syms, (len.punctured_bits + cbps_ - 1) / cbps_);

  Result result;
  result.symbols = n_symbols;

  // Differential demapper seeded from the *received* phase reference so
  // a static channel phase cancels out.
  std::optional<mapping::DifferentialMapper> diff;
  if (p.mapping == MappingKind::kDifferential) {
    diff.emplace(p.diff_kind, layout_.data_bins.size());
    const std::size_t ref_off = p.frame.null_samples;
    const cvec bins = demod_bins(burst, ref_off, /*equalized=*/true);
    cvec ref(layout_.data_bins.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ref[i] = bins[layout_.data_bins[i]];
    }
    diff->reset(ref);
  }

  // 1. Tones -> coded bits (or LLRs on the soft path).
  const bool soft = soft_path_active();
  bitvec coded;
  rvec soft_coded;
  coded.reserve(soft ? 0 : n_symbols * cbps_);
  if (soft) soft_coded.reserve(n_symbols * cbps_);
  core::PilotGenerator pilots(p.pilots, layout_.pilot_bins.size());
  std::size_t offset = payload_offset();
  cvec data;
  rvec noise_scratch;
  rvec sym_llr;
  for (std::size_t sym = 0; sym < n_symbols; ++sym) {
    const cvec bins = demod_bins(burst, offset, /*equalized=*/true);
    extract_symbol(bins, pilots.next_symbol(), data);

    if (soft) {
      soft_demap_symbol(data, noise_scratch, sym_llr);
      if (bit_interleaver_) {
        sym_llr = bit_interleaver_->deinterleave(
            std::span<const double>(sym_llr));
      }
      soft_coded.insert(soft_coded.end(), sym_llr.begin(),
                        sym_llr.end());
      offset += p.symbol_len();
      continue;
    }

    bitvec sym_bits;
    switch (p.mapping) {
      case MappingKind::kFixed:
        sym_bits = constellation_->demap_all(data);
        break;
      case MappingKind::kDifferential:
        sym_bits = diff->demap_symbol(data);
        break;
      case MappingKind::kBitTable:
        sym_bits = dmt_->demap_symbol(data);
        break;
    }
    if (bit_interleaver_) {
      sym_bits = bit_interleaver_->deinterleave(
          std::span<const std::uint8_t>(sym_bits));
    }
    coded.insert(coded.end(), sym_bits.begin(), sym_bits.end());
    offset += p.symbol_len();
  }

  // Uncoded mode measures the raw channel: the pre-FEC coded stream
  // (symbol padding included) against Transmitter::encode_payload.
  if (options_.mode == RxMode::kUncoded) {
    result.raw_bits = std::move(coded);
    return result;
  }

  // 2. Inner code.
  bitvec bits;
  if (soft) {
    soft_coded.resize(len.punctured_bits);  // drop symbol padding
    const rvec mother = coding::depuncture_soft(
        soft_coded, p.fec.puncture, len.mother_bits);
    bits = viterbi_->decode_soft_terminated(mother);
  } else if (p.fec.conv_enabled) {
    coded.resize(len.punctured_bits);
    const bitvec mother =
        coding::depuncture(coded, p.fec.puncture, len.mother_bits);
    bits = viterbi_->decode_terminated(mother);
  } else {
    coded.resize(len.punctured_bits);
    bits = std::move(coded);
  }
  bits.resize(len.rs_out_bits);

  // 3. Outer code.
  if (p.fec.rs_enabled) {
    const bytevec rx_bytes = bits_to_bytes_msb(bits);
    bytevec message;
    message.reserve(rx_bytes.size() / rs_->n() * rs_->k());
    for (std::size_t off = 0; off < rx_bytes.size(); off += rs_->n()) {
      const auto block = std::span<const std::uint8_t>(rx_bytes)
                             .subspan(off, rs_->n());
      auto decoded = rs_->decode(block);
      if (!decoded.success) {
        ++result.rs_blocks_failed;
        // Fall back to the systematic part.
        decoded.message.assign(block.begin(),
                               block.begin() + static_cast<std::ptrdiff_t>(
                                                   rs_->k()));
      }
      message.insert(message.end(), decoded.message.begin(),
                     decoded.message.end());
    }
    bits = bytes_to_bits_msb(message);
  }
  bits.resize(len.scrambled_bits);

  // 4. Descramble.
  if (p.scrambler.enabled) {
    coding::Scrambler scr(p.scrambler.degree, p.scrambler.taps,
                          p.scrambler.seed);
    bits = scr.process(bits);
  }
  result.payload = std::move(bits);
  return result;
}

}  // namespace ofdm::rx
