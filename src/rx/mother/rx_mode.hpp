// RxMode: what the RX Mother Model measures. Split out of mother_rx.hpp
// so lightweight consumers (the scenario-deck grammar) can name receiver
// modes without pulling the full receiver machinery into their headers.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace ofdm::rx {

/// kCoded runs the full FEC chain and returns the decoded payload
/// (post-FEC BER); kUncoded stops at the hard-demapped, deinterleaved
/// coded stream (pre-FEC channel BER, compared against
/// Transmitter::encode_payload's output).
enum class RxMode {
  kCoded,
  kUncoded,
};

std::string rx_mode_name(RxMode m);
std::optional<RxMode> rx_mode_from_name(std::string_view name);

}  // namespace ofdm::rx
