// Reference receiver: the exact inverse of the Mother Model's pipeline.
//
// Its role in the reproduction is verification — the software equivalent
// of the vector signal analyzer an RF lab would point at the transmitter.
// A noiseless loopback must decode with zero bit errors for every family
// member; through the RF chain it provides EVM and BER measurements.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "core/transmitter.hpp"

namespace ofdm::rx {

class Receiver {
 public:
  /// Configure for a standard; must match the transmitter's parameters.
  explicit Receiver(core::OfdmParams params);
  ~Receiver();
  Receiver(Receiver&&) noexcept;
  Receiver& operator=(Receiver&&) noexcept;

  const core::OfdmParams& params() const;

  /// One-tap frequency-domain equalizer, one coefficient per FFT bin
  /// (natural order). Received tones are *multiplied* by it.
  void set_equalizer(cvec per_bin);
  void clear_equalizer();

  /// Common-phase-error tracking: per symbol, estimate the residual
  /// phase from the pilot tones (against their known values) and
  /// derotate the data tones. Corrects residual CFO and oscillator
  /// phase noise; a no-op for configurations without pilots.
  void enable_pilot_phase_tracking(bool on);

  /// Soft-decision decoding: max-log LLR demapping feeding a soft
  /// Viterbi (worth ~2 dB on AWGN). Applies to fixed-constellation
  /// standards with an inner convolutional code; other configurations
  /// silently keep the hard path.
  void enable_soft_decoding(bool on);

  /// Estimate an equalizer from the burst's own training section (the
  /// 802.11a LTF or the phase-reference symbol). Returns the per-bin
  /// coefficients; does not install them.
  cvec estimate_equalizer(std::span<const cplx> burst) const;

  struct Result {
    bitvec payload;
    std::size_t symbols = 0;
    std::size_t rs_blocks_failed = 0;  ///< uncorrectable outer-code blocks
  };

  /// Demodulate and decode a burst produced by Transmitter::modulate()
  /// for `payload_bits` payload bits.
  Result demodulate(std::span<const cplx> burst,
                    std::size_t payload_bits) const;

  /// Equalized constellation-domain data cells per payload symbol —
  /// the input to EVM measurements. `n_symbols` as reported by the
  /// transmitter's Burst.
  std::vector<cvec> extract_data_tones(std::span<const cplx> burst,
                                       std::size_t n_symbols) const;

  /// Sample offset of the first payload symbol within a burst.
  std::size_t payload_offset() const;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace ofdm::rx
