// Burst synchronization utilities: cyclic-prefix correlation for symbol
// timing and fractional carrier-frequency-offset estimation, plus the
// Schmidl&Cox-style plateau metric for the 802.11a short training field.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace ofdm::rx {

struct TimingEstimate {
  std::size_t offset = 0;  ///< estimated start of the OFDM symbol
  double metric = 0.0;     ///< normalized correlation peak in [0, 1]
  double cfo_hz = 0.0;     ///< fractional CFO estimate
};

/// Slide a CP correlator over `samples` and return the best symbol-start
/// hypothesis. `sample_rate` only scales the CFO estimate.
TimingEstimate cp_timing(std::span<const cplx> samples,
                         std::size_t fft_size, std::size_t cp_len,
                         double sample_rate);

/// Schmidl&Cox metric using the 16-sample periodicity of the 802.11a STF:
/// returns the normalized metric sequence M[d] (length samples-32).
rvec stf_metric(std::span<const cplx> samples);

/// Estimate a fractional CFO from the phase of the delayed
/// autocorrelation with lag `period` over `span_len` samples at `offset`.
double estimate_cfo(std::span<const cplx> samples, std::size_t offset,
                    std::size_t period, std::size_t span_len,
                    double sample_rate);

}  // namespace ofdm::rx
