#include "metrics/evm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ofdm::metrics {

double EvmResult::rms_db() const {
  return rms > 0.0 ? 20.0 * std::log10(rms) : -400.0;
}

EvmResult evm(std::span<const cplx> received,
              std::span<const cplx> reference) {
  OFDM_REQUIRE_DIM(received.size() == reference.size() && !received.empty(),
                   "evm: received/reference size mismatch");
  double err_acc = 0.0;
  double ref_acc = 0.0;
  double peak_err = 0.0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    const double e = std::norm(received[i] - reference[i]);
    err_acc += e;
    ref_acc += std::norm(reference[i]);
    peak_err = std::max(peak_err, e);
  }
  EvmResult r;
  const double ref_ms = ref_acc / static_cast<double>(received.size());
  if (ref_ms > 0.0) {
    r.rms = std::sqrt(err_acc / static_cast<double>(received.size()) /
                      ref_ms);
    r.peak = std::sqrt(peak_err / ref_ms);
  }
  return r;
}

EvmResult evm_blind(std::span<const cplx> received,
                    const mapping::Constellation& constellation) {
  cvec reference(received.size());
  bitvec tmp;
  for (std::size_t i = 0; i < received.size(); ++i) {
    tmp.clear();
    constellation.demap(received[i], tmp);
    std::size_t index = 0;
    for (std::uint8_t b : tmp) index = (index << 1) | (b & 1u);
    reference[i] = constellation.point(index);
  }
  return evm(received, reference);
}

}  // namespace ofdm::metrics
