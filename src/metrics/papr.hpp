// Peak-to-average power ratio and its CCDF — the OFDM property that makes
// the PA back-off experiment interesting in the first place.
#pragma once

#include <span>

#include "common/types.hpp"

namespace ofdm::metrics {

/// PAPR of a signal segment, dB.
double papr_db(std::span<const cplx> x);

/// Complementary CDF of the per-symbol PAPR: for each threshold (dB),
/// the fraction of length-`window` segments whose PAPR exceeds it.
struct PaprCcdf {
  rvec thresholds_db;
  rvec probability;
};

PaprCcdf papr_ccdf(std::span<const cplx> x, std::size_t window,
                   std::span<const double> thresholds_db);

}  // namespace ofdm::metrics
