// Bit-error bookkeeping for the loopback and co-simulation experiments.
#pragma once

#include <span>

#include "common/types.hpp"

namespace ofdm::metrics {

struct BerResult {
  std::size_t bits = 0;
  std::size_t errors = 0;
  double rate() const {
    return bits > 0 ? static_cast<double>(errors) /
                          static_cast<double>(bits)
                    : 0.0;
  }
};

/// Compare transmitted vs received bits.
BerResult ber(std::span<const std::uint8_t> tx,
              std::span<const std::uint8_t> rx);

/// Accumulator for Monte-Carlo sweeps.
class BerCounter {
 public:
  void add(std::span<const std::uint8_t> tx,
           std::span<const std::uint8_t> rx);
  BerResult result() const { return acc_; }
  void reset() { acc_ = {}; }

 private:
  BerResult acc_;
};

}  // namespace ofdm::metrics
