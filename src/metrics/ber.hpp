// Bit-error bookkeeping for the loopback, co-simulation and Monte-Carlo
// campaign experiments.
#pragma once

#include <span>

#include "common/types.hpp"

namespace ofdm::metrics {

/// Two-sided confidence interval on a binomial proportion.
struct BinomialCi {
  double lo = 0.0;
  double hi = 1.0;
  double width() const { return hi - lo; }
};

/// Confidence interval for `errors` successes in `bits` Bernoulli
/// trials at the given confidence level (default 95%). Uses the Wilson
/// score interval, replaced by the exact Clopper-Pearson closed forms at
/// the boundary counts errors == 0 and errors == bits, where Wilson is
/// known to be off (a zero-error point must not report a zero-width
/// interval). bits == 0 returns the vacuous [0, 1].
BinomialCi binomial_ci(std::size_t bits, std::size_t errors,
                       double confidence = 0.95);

/// Two-sided normal quantile z with P(|N(0,1)| <= z) = confidence
/// (e.g. 0.95 -> 1.95996...). Exposed for the early-stop math.
double normal_quantile_two_sided(double confidence);

struct BerResult {
  std::size_t bits = 0;
  std::size_t errors = 0;
  /// 95% confidence bound on the error rate (Wilson / Clopper-Pearson,
  /// see binomial_ci). Filled by ber() and BerCounter::result(); the
  /// vacuous [0, 1] for an empty measurement.
  double ci_lo = 0.0;
  double ci_hi = 1.0;

  /// False when no bits were compared: such a result carries no
  /// information and must not flow into a BER curve as a silent 0.
  bool valid() const { return bits > 0; }

  /// Error rate; NaN-free by construction (0.0 when empty — check
  /// valid() before trusting it).
  double rate() const {
    return valid() ? static_cast<double>(errors) /
                         static_cast<double>(bits)
                   : 0.0;
  }
};

/// Compare transmitted vs received bits.
BerResult ber(std::span<const std::uint8_t> tx,
              std::span<const std::uint8_t> rx);

/// Accumulator for Monte-Carlo sweeps.
class BerCounter {
 public:
  void add(std::span<const std::uint8_t> tx,
           std::span<const std::uint8_t> rx);
  /// Merge raw counts (e.g. a worker's partial tally).
  void add_counts(std::size_t bits, std::size_t errors);
  /// Totals with the 95% confidence bound attached.
  BerResult result() const;
  void reset() { acc_ = {}; }

 private:
  BerResult acc_;
};

}  // namespace ofdm::metrics
