// Transmit spectral masks and adjacent-channel power — the RF-level
// acceptance criteria the co-simulation experiments check against.
#pragma once

#include <span>

#include "common/types.hpp"
#include "dsp/spectrum.hpp"

namespace ofdm::metrics {

/// A piecewise-linear spectral mask: attenuation (dBr, relative to the
/// in-band PSD peak) as a function of |frequency offset| in Hz.
struct SpectralMask {
  rvec offsets_hz;  ///< ascending breakpoints
  rvec limits_dbr;  ///< limit at each breakpoint (linear interp between)

  /// Mask limit at a given offset (clamped to the end values).
  double limit_at(double offset_hz) const;
};

/// IEEE 802.11a-1999 17.3.9.2 transmit mask: 0 dBr to 9 MHz, -20 dBr at
/// 11 MHz, -28 dBr at 20 MHz, -40 dBr at 30 MHz.
SpectralMask wlan_mask();

struct MaskReport {
  bool pass = true;
  double worst_margin_db = 1e9;  ///< min(limit - measured); < 0 == violation
  double worst_offset_hz = 0.0;
};

/// Check a PSD (DC-centred, from dsp::welch_psd) against a mask. The
/// reference level is the peak PSD within ±`ref_band_hz`. Bins with
/// |offset| < `margin_from_hz` are still checked for violations but do
/// not drive the reported worst margin (the in-band top touches the
/// 0 dBr limit by construction and would always report margin 0).
MaskReport check_mask(const dsp::Psd& psd, const SpectralMask& mask,
                      double ref_band_hz, double margin_from_hz = 0.0);

/// Adjacent channel power ratio: power in
/// [offset - bw/2, offset + bw/2] over power in [-bw/2, bw/2], dB.
double acpr_db(const dsp::Psd& psd, double channel_bw_hz,
               double adjacent_offset_hz);

/// Occupied bandwidth: the symmetric band holding `fraction` (e.g. 0.99)
/// of the total power.
double occupied_bandwidth_hz(const dsp::Psd& psd, double fraction = 0.99);

}  // namespace ofdm::metrics
