#include "metrics/ber.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ofdm::metrics {

double normal_quantile_two_sided(double confidence) {
  OFDM_REQUIRE(confidence > 0.0 && confidence < 1.0,
               "binomial_ci: confidence must be in (0, 1)");
  // Acklam's rational approximation of the probit function, |err| <
  // 1.15e-9 — far below the Monte-Carlo noise any CI here describes.
  const double p = 0.5 + confidence / 2.0;  // upper-tail quantile point
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  if (p > 1.0 - p_low) {
    // Upper region: the tail formula yields the (negative) lower-tail
    // quantile of 1 - p; negate it for the upper tail.
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // confidence < 1 - 2*p_low keeps p in the central branch.
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

BinomialCi binomial_ci(std::size_t bits, std::size_t errors,
                       double confidence) {
  OFDM_REQUIRE(errors <= bits, "binomial_ci: errors exceed bits");
  if (bits == 0) return {0.0, 1.0};

  const double n = static_cast<double>(bits);
  const double alpha = 1.0 - confidence;

  // Boundary counts: exact Clopper-Pearson, which has closed forms at
  // k = 0 and k = n (the Beta quantile degenerates to a power). Wilson
  // would report a non-degenerate but systematically short interval
  // here, and a 0-error point's upper bound is exactly what early
  // stopping must not underestimate.
  if (errors == 0) {
    return {0.0, 1.0 - std::pow(alpha / 2.0, 1.0 / n)};
  }
  if (errors == bits) {
    return {std::pow(alpha / 2.0, 1.0 / n), 1.0};
  }

  // Wilson score interval.
  const double z = normal_quantile_two_sided(confidence);
  const double z2 = z * z;
  const double p_hat = static_cast<double>(errors) / n;
  const double denom = 1.0 + z2 / n;
  const double center = (p_hat + z2 / (2.0 * n)) / denom;
  const double half =
      z *
      std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) / denom;
  BinomialCi ci{center - half, center + half};
  if (ci.lo < 0.0) ci.lo = 0.0;
  if (ci.hi > 1.0) ci.hi = 1.0;
  return ci;
}

BerResult ber(std::span<const std::uint8_t> tx,
              std::span<const std::uint8_t> rx) {
  OFDM_REQUIRE_DIM(tx.size() == rx.size(), "ber: stream size mismatch");
  BerResult r;
  r.bits = tx.size();
  for (std::size_t i = 0; i < tx.size(); ++i) {
    r.errors += (tx[i] & 1u) != (rx[i] & 1u);
  }
  const BinomialCi ci = binomial_ci(r.bits, r.errors);
  r.ci_lo = ci.lo;
  r.ci_hi = ci.hi;
  return r;
}

void BerCounter::add(std::span<const std::uint8_t> tx,
                     std::span<const std::uint8_t> rx) {
  const BerResult r = ber(tx, rx);
  acc_.bits += r.bits;
  acc_.errors += r.errors;
}

void BerCounter::add_counts(std::size_t bits, std::size_t errors) {
  OFDM_REQUIRE(errors <= bits, "BerCounter: errors exceed bits");
  acc_.bits += bits;
  acc_.errors += errors;
}

BerResult BerCounter::result() const {
  BerResult r = acc_;
  const BinomialCi ci = binomial_ci(r.bits, r.errors);
  r.ci_lo = ci.lo;
  r.ci_hi = ci.hi;
  return r;
}

}  // namespace ofdm::metrics
