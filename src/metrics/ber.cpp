#include "metrics/ber.hpp"

#include "common/error.hpp"

namespace ofdm::metrics {

BerResult ber(std::span<const std::uint8_t> tx,
              std::span<const std::uint8_t> rx) {
  OFDM_REQUIRE_DIM(tx.size() == rx.size(), "ber: stream size mismatch");
  BerResult r;
  r.bits = tx.size();
  for (std::size_t i = 0; i < tx.size(); ++i) {
    r.errors += (tx[i] & 1u) != (rx[i] & 1u);
  }
  return r;
}

void BerCounter::add(std::span<const std::uint8_t> tx,
                     std::span<const std::uint8_t> rx) {
  const BerResult r = ber(tx, rx);
  acc_.bits += r.bits;
  acc_.errors += r.errors;
}

}  // namespace ofdm::metrics
