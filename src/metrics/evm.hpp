// Error vector magnitude — the RF designer's primary modulation-quality
// metric in the co-simulation experiments.
#pragma once

#include <span>

#include "common/types.hpp"
#include "mapping/constellation.hpp"

namespace ofdm::metrics {

struct EvmResult {
  double rms = 0.0;      ///< RMS EVM, linear fraction of reference RMS
  double peak = 0.0;     ///< worst-case symbol EVM (linear)
  double rms_db() const;
  double rms_percent() const { return rms * 100.0; }
};

/// Data-aided EVM: error between received and known reference symbols,
/// normalized by the reference RMS.
EvmResult evm(std::span<const cplx> received,
              std::span<const cplx> reference);

/// Decision-directed (blind) EVM: each received point is compared to the
/// nearest constellation point.
EvmResult evm_blind(std::span<const cplx> received,
                    const mapping::Constellation& constellation);

}  // namespace ofdm::metrics
