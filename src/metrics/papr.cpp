#include "metrics/papr.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ofdm::metrics {

double papr_db(std::span<const cplx> x) {
  const double avg = mean_power(x);
  if (avg <= 0.0) return 0.0;
  return to_db(peak_power(x) / avg);
}

PaprCcdf papr_ccdf(std::span<const cplx> x, std::size_t window,
                   std::span<const double> thresholds_db) {
  OFDM_REQUIRE(window >= 1, "papr_ccdf: window must be >= 1");
  OFDM_REQUIRE_DIM(x.size() >= window,
                   "papr_ccdf: signal shorter than one window");
  PaprCcdf out;
  out.thresholds_db.assign(thresholds_db.begin(), thresholds_db.end());
  out.probability.assign(thresholds_db.size(), 0.0);

  std::size_t count = 0;
  for (std::size_t start = 0; start + window <= x.size(); start += window) {
    const double p = papr_db(x.subspan(start, window));
    for (std::size_t t = 0; t < out.thresholds_db.size(); ++t) {
      if (p > out.thresholds_db[t]) out.probability[t] += 1.0;
    }
    ++count;
  }
  if (count > 0) {
    for (double& p : out.probability) p /= static_cast<double>(count);
  }
  return out;
}

}  // namespace ofdm::metrics
