#include "metrics/mask.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ofdm::metrics {

double SpectralMask::limit_at(double offset_hz) const {
  OFDM_REQUIRE(!offsets_hz.empty() && offsets_hz.size() == limits_dbr.size(),
               "SpectralMask: malformed breakpoint table");
  const double f = std::abs(offset_hz);
  if (f <= offsets_hz.front()) return limits_dbr.front();
  if (f >= offsets_hz.back()) return limits_dbr.back();
  for (std::size_t i = 1; i < offsets_hz.size(); ++i) {
    if (f <= offsets_hz[i]) {
      const double t =
          (f - offsets_hz[i - 1]) / (offsets_hz[i] - offsets_hz[i - 1]);
      return limits_dbr[i - 1] + t * (limits_dbr[i] - limits_dbr[i - 1]);
    }
  }
  return limits_dbr.back();
}

SpectralMask wlan_mask() {
  return SpectralMask{{9e6, 11e6, 20e6, 30e6}, {0.0, -20.0, -28.0, -40.0}};
}

MaskReport check_mask(const dsp::Psd& psd, const SpectralMask& mask,
                      double ref_band_hz, double margin_from_hz) {
  const double ref = psd.peak_in_band(-ref_band_hz, ref_band_hz);
  OFDM_REQUIRE(ref > 0.0, "check_mask: no in-band power");
  MaskReport report;
  bool violated = false;
  for (std::size_t i = 0; i < psd.freq.size(); ++i) {
    const double level_dbr = to_db(psd.power[i] / ref);
    const double limit = mask.limit_at(psd.freq[i]);
    const double margin = limit - level_dbr;
    if (margin < 0.0) violated = true;
    if (std::abs(psd.freq[i]) < margin_from_hz && margin >= 0.0) {
      continue;  // compliant in-band bin: not margin-relevant
    }
    if (margin < report.worst_margin_db) {
      report.worst_margin_db = margin;
      report.worst_offset_hz = psd.freq[i];
    }
  }
  report.pass = !violated;
  return report;
}

double acpr_db(const dsp::Psd& psd, double channel_bw_hz,
               double adjacent_offset_hz) {
  const double half = channel_bw_hz / 2.0;
  const double main = psd.band_power(-half, half);
  const double adj = psd.band_power(adjacent_offset_hz - half,
                                    adjacent_offset_hz + half);
  OFDM_REQUIRE(main > 0.0, "acpr_db: no main-channel power");
  return to_db(adj / main);
}

double occupied_bandwidth_hz(const dsp::Psd& psd, double fraction) {
  OFDM_REQUIRE(fraction > 0.0 && fraction < 1.0,
               "occupied_bandwidth_hz: fraction must be in (0,1)");
  const double total = psd.total_power();
  OFDM_REQUIRE(total > 0.0, "occupied_bandwidth_hz: empty spectrum");
  // Grow a symmetric band around DC until it holds the target fraction.
  const double fmax = std::max(std::abs(psd.freq.front()),
                               std::abs(psd.freq.back()));
  const double df = psd.freq.size() > 1 ? psd.freq[1] - psd.freq[0] : fmax;
  for (double half = df; half <= fmax + df; half += df) {
    if (psd.band_power(-half, half) >= fraction * total) {
      return 2.0 * half;
    }
  }
  return 2.0 * fmax;
}

}  // namespace ofdm::metrics
