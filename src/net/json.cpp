#include "net/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ofdm::net {

namespace {

constexpr std::size_t kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw NetError("json: " + what + " at offset " + std::to_string(pos));
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || text[pos] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume(char c) {
    if (!eof() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text.substr(pos, w.size()) == w) {
      pos += w.size();
      return true;
    }
    return false;
  }

  Json value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return Json(string());
    if (c == 't') {
      if (consume_word("true")) return Json(true);
      fail("bad literal");
    }
    if (c == 'f') {
      if (consume_word("false")) return Json(false);
      fail("bad literal");
    }
    if (c == 'n') {
      if (consume_word("null")) return Json(nullptr);
      fail("bad literal");
    }
    if (c == '-' || (c >= '0' && c <= '9')) return Json(number());
    fail("unexpected character");
  }

  Json object(std::size_t depth) {
    expect('{');
    Json::Object out;
    skip_ws();
    if (consume('}')) return Json(std::move(out));
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = string();
      skip_ws();
      expect(':');
      out.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return Json(std::move(out));
    }
  }

  Json array(std::size_t depth) {
    expect('[');
    Json::Array out;
    skip_ws();
    if (consume(']')) return Json(std::move(out));
    while (true) {
      out.push_back(value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return Json(std::move(out));
    }
  }

  double number() {
    const std::size_t start = pos;
    if (consume('-') && eof()) fail("bad number");
    // Strict JSON grammar: int [frac] [exp], no leading '+', no hex,
    // no bare '.', no "01".
    if (eof()) fail("bad number");
    if (consume('0')) {
      // leading zero must not be followed by another digit
      if (!eof() && peek() >= '0' && peek() <= '9') fail("bad number");
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    } else {
      fail("bad number");
    }
    if (consume('.')) {
      if (eof() || peek() < '0' || peek() > '9') fail("bad number");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (eof() || peek() < '0' || peek() > '9') fail("bad number");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    return v;
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos++]);
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) fail("truncated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned cp = hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // high surrogate: require a paired \uDC00-\uDFFF
              if (!consume('\\') || !consume('u')) {
                fail("unpaired surrogate");
              }
              const unsigned lo = hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              fail("unpaired surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default:
            fail("bad escape");
        }
      } else if (c < 0x20) {
        fail("raw control character in string");
      } else {
        out.push_back(static_cast<char>(c));
      }
    }
  }
};

}  // namespace

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::str_or(std::string_view key,
                         const std::string& dflt) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : dflt;
}

double Json::num_or(std::string_view key, double dflt) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : dflt;
}

bool Json::bool_or(std::string_view key, bool dflt) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : dflt;
}

Json& Json::set(std::string key, Json value) {
  if (!is_object()) v_ = Object{};
  std::get<Object>(v_).emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (!is_array()) v_ = Array{};
  std::get<Array>(v_).push_back(std::move(value));
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

namespace {

void dump_value(const Json& j, std::string& out) {
  if (j.is_null()) {
    out += "null";
  } else if (j.is_bool()) {
    out += j.as_bool() ? "true" : "false";
  } else if (j.is_number()) {
    const double v = j.as_number();
    char buf[40];
    if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
      std::snprintf(buf, sizeof buf, "%.0f", v);
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", v);
    }
    out += buf;
  } else if (j.is_string()) {
    out.push_back('"');
    out += json_escape(j.as_string());
    out.push_back('"');
  } else if (j.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Json& v : j.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(v, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : j.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      out += json_escape(k);
      out += "\":";
      dump_value(v, out);
    }
    out.push_back('}');
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json json_parse(std::string_view text) {
  Parser p{text};
  Json v = p.value(0);
  p.skip_ws();
  if (!p.eof()) p.fail("trailing input after JSON value");
  return v;
}

}  // namespace ofdm::net
