// Minimal strict JSON for the line-oriented wire protocol.
//
// The daemon's protocol needs exactly one JSON object per line in both
// directions, parsed from untrusted bytes — so this parser is strict
// and bounded by construction: UTF-8 pass-through, \uXXXX escapes,
// a hard nesting-depth cap, no trailing input, every malformed byte
// surfacing as ofdm::net::NetError with an offset. It is NOT a general
// JSON library: numbers are doubles (exact for the integers the
// protocol carries, which all fit in 2^53), object keys keep insertion
// order and may repeat (find() returns the first).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace ofdm::net {

/// Raised for every protocol-level failure: malformed JSON, bad base64,
/// socket errors, handshake violations.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(unsigned long n) : v_(static_cast<double>(n)) {}
  Json(unsigned long long n) : v_(static_cast<double>(n)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool(bool dflt = false) const {
    return is_bool() ? std::get<bool>(v_) : dflt;
  }
  double as_number(double dflt = 0.0) const {
    return is_number() ? std::get<double>(v_) : dflt;
  }
  const std::string& as_string() const {
    static const std::string empty;
    return is_string() ? std::get<std::string>(v_) : empty;
  }
  const Array& as_array() const {
    static const Array empty;
    return is_array() ? std::get<Array>(v_) : empty;
  }
  const Object& as_object() const {
    static const Object empty;
    return is_object() ? std::get<Object>(v_) : empty;
  }

  /// First value under `key` in an object; nullptr when absent (or when
  /// this value is not an object).
  const Json* find(std::string_view key) const;

  /// Convenience lookups used all over the protocol handlers.
  std::string str_or(std::string_view key, const std::string& dflt) const;
  double num_or(std::string_view key, double dflt) const;
  bool bool_or(std::string_view key, bool dflt) const;

  /// Append/overwrite-free object insertion (protocol replies are
  /// write-once, so a plain append keeps deterministic field order).
  Json& set(std::string key, Json value);
  Json& push_back(Json value);

  /// Serialize; deterministic bytes (fixed escaping, '%.17g' numbers
  /// with integer values rendered without exponent/decimal point).
  std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parse exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed). Throws NetError naming the byte offset on any
/// syntax error, on nesting deeper than 64, and on trailing input.
Json json_parse(std::string_view text);

/// JSON string escaping (without the surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace ofdm::net
