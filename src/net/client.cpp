#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/protocol.hpp"

namespace ofdm::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

}  // namespace

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineClient::connect(const std::string& host, std::uint16_t port,
                         double timeout_s) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError("socket(): " + std::string(std::strerror(errno)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NetError("bad address '" + host + "'");
  }

  // Non-blocking connect so refusal vs. timeout is distinguishable.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw NetError("connect(" + host + ":" + std::to_string(port) +
                   "): " + err);
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1000.0));
    int soerr = 0;
    socklen_t len = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (pr <= 0 || soerr != 0) {
      ::close(fd);
      throw NetError("connect(" + host + ":" + std::to_string(port) + "): " +
                     (pr <= 0 ? "timeout" : std::strerror(soerr)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking
  fd_ = fd;
  buffer_.clear();
}

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void LineClient::send(const Json& req) { send_text(req.dump() + "\n"); }

void LineClient::send_text(const std::string& bytes) {
  if (fd_ < 0) throw NetError("send on a closed client");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError("send(): " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

Json LineClient::recv_line(double timeout_s) {
  if (fd_ < 0) throw NetError("recv on a closed client");
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         static_cast<long long>(timeout_s * 1000.0));
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return json_parse(line);
    }
    const int wait = remaining_ms(deadline);
    if (wait == 0) throw NetError("recv timeout after " +
                                  std::to_string(timeout_s) + "s");
    pollfd pfd{fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, wait);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw NetError("poll(): " + std::string(std::strerror(errno)));
    }
    if (r == 0) continue;  // deadline re-checked above
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) throw NetError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError("recv(): " + std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Json LineClient::request(const Json& req, double timeout_s) {
  send(req);
  return recv_line(timeout_s);
}

Json LineClient::waveform(const Json& req, cvec& samples, double timeout_s) {
  send(req);
  std::size_t expect_burst = 0, expect_seq = 0;
  for (;;) {
    Json line = recv_line(timeout_s);
    const Json* ev = line.find("ev");
    if (ev == nullptr) return line;  // terminal ok/error reply
    if (ev->as_string() != "iq") {
      throw NetError("unexpected event '" + ev->as_string() +
                     "' in waveform stream");
    }
    const auto burst = static_cast<std::size_t>(line.num_or("burst", 0));
    const auto seq = static_cast<std::size_t>(line.num_or("seq", 0));
    if (burst != expect_burst || seq != expect_seq) {
      if (burst == expect_burst + 1 && seq == 0) {
        expect_burst = burst;
        expect_seq = 0;
      } else {
        throw NetError("waveform stream out of order (burst " +
                       std::to_string(burst) + " seq " + std::to_string(seq) +
                       ")");
      }
    }
    ++expect_seq;
    const cvec part = unpack_iq_f32(line.str_or("data", ""));
    if (part.size() != static_cast<std::size_t>(line.num_or("n", -1.0))) {
      throw NetError("iq event length mismatch");
    }
    samples.insert(samples.end(), part.begin(), part.end());
  }
}

}  // namespace ofdm::net
