#include "net/jobs.hpp"

#include <atomic>
#include <cstdio>
#include <dirent.h>

#include "common/error.hpp"
#include "net/json.hpp"
#include "sim/aggregator.hpp"
#include "sim/checkpoint.hpp"

namespace ofdm::net {

namespace {

std::string digest_id(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf);
}

/// Inverse of digest_id: false unless `id` is exactly 16 lowercase hex
/// chars (the only ids this manager ever hands out).
bool parse_digest_id(const std::string& id, std::uint64_t& out) {
  if (id.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : id) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw NetError("cannot open " + path);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw NetError("read error on " + path);
  return out;
}

void write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw NetError("cannot open " + tmp + " for writing");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != text.size() || !flushed ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw NetError("cannot write " + path);
  }
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
  }
  return "?";
}

bool job_state_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled || s == JobState::kExpired;
}

struct JobManager::Job {
  std::string id;
  std::uint64_t digest = 0;
  std::string deck_text;
  sim::ScenarioDeck deck;  ///< parsed+validated at admission
  JobState state = JobState::kQueued;  // guarded by JobManager::m_
  bool cached = false;
  bool recovered = false;
  /// Client asked for THIS job to die (guarded by m_). Distinct from
  /// the token, which drain/shutdown also trips: an explicit cancel
  /// must classify as kCancelled even mid-drain, never be resurrected.
  bool cancel_requested = false;
  std::uint64_t owner = 0;  ///< client id for quota release; 0 = none
  double deadline_s = 0.0;
  sim::CancelToken token;

  // Progress is written from the campaign's on_round hook (executor
  // thread, no manager lock) and read by status() — hence atomics.
  std::atomic<std::size_t> rounds{0};
  std::atomic<std::size_t> trials{0};
  std::atomic<std::size_t> points_done{0};
  std::size_t points = 0;

  std::string curves_json, curves_csv, error;  // guarded by m_
};

JobManager::JobManager(JobConfig cfg, ServerStats& stats)
    : cfg_(cfg), stats_(stats), cache_(cfg.cache_bytes) {
  if (cfg_.executors == 0) cfg_.executors = 1;
  if (cfg_.pool_threads == 0) cfg_.pool_threads = 1;
  executors_.reserve(cfg_.executors);
  for (std::size_t i = 0; i < cfg_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

JobManager::~JobManager() { shutdown(false); }

std::string JobManager::deck_path(const std::string& id) const {
  return cfg_.state_dir + "/" + id + ".deck";
}

std::string JobManager::ckpt_path(const std::string& id) const {
  return cfg_.state_dir + "/" + id + ".ckpt";
}

void JobManager::persist_deck(const Job& job) {
  if (cfg_.state_dir.empty()) return;
  write_file_atomic(deck_path(job.id), job.deck_text);
}

void JobManager::remove_files(const Job& job) {
  if (cfg_.state_dir.empty()) return;
  std::remove(deck_path(job.id).c_str());
  std::remove(ckpt_path(job.id).c_str());
}

JobManager::SubmitResult JobManager::submit(const std::string& deck_text,
                                            double deadline_s,
                                            std::uint64_t client,
                                            std::size_t quota) {
  SubmitResult out;

  // Validate up-front, outside the lock: a deck that cannot parse must
  // never occupy a queue slot (or a persisted file).
  sim::ScenarioDeck deck;
  try {
    deck = sim::parse_deck(deck_text);
  } catch (const std::exception& e) {
    out.admission = Admission::kBadDeck;
    out.error = e.what();
    return out;
  }
  const std::uint64_t digest = sim::deck_digest(deck);
  out.id = digest_id(digest);

  std::unique_lock<std::mutex> lk(m_);
  if (stopping_) {
    out.admission = Admission::kShutdown;
    return out;
  }

  const auto it = jobs_.find(out.id);
  if (it != jobs_.end() && !job_state_terminal(it->second->state)) {
    // Identical deck already in flight: attach, charge no quota.
    out.admission = Admission::kAttached;
    return out;
  }
  if (it != jobs_.end() && it->second->state == JobState::kDone) {
    out.admission = Admission::kAttached;
    return out;
  }
  // (failed/cancelled/expired terminal entries fall through: a fresh
  // submission of the same deck gets a fresh run.)

  ResultCache::Entry hit;
  if (cache_.get(digest, hit)) {
    auto job = std::make_shared<Job>();
    job->id = out.id;
    job->digest = digest;
    job->state = JobState::kDone;
    job->cached = true;
    job->points = sim::expand_grid(deck).size();
    job->points_done.store(job->points, std::memory_order_relaxed);
    job->curves_json = std::move(hit.curves_json);
    job->curves_csv = std::move(hit.curves_csv);
    jobs_[out.id] = std::move(job);
    out.admission = Admission::kCached;
    return out;
  }

  std::size_t queued_now = 0;
  for (const JobPtr& j : queue_) {
    if (j->state == JobState::kQueued) ++queued_now;
  }
  if (queued_now >= cfg_.max_queued) {
    out.admission = Admission::kQueueFull;
    stats_.bump(stats_.rejected_queue_full);
    return out;
  }
  if (client != 0 && quota > 0 && active_per_client_[client] >= quota) {
    out.admission = Admission::kQuota;
    stats_.bump(stats_.rejected_quota);
    return out;
  }

  auto job = std::make_shared<Job>();
  job->id = out.id;
  job->digest = digest;
  job->deck_text = deck_text;
  job->deck = std::move(deck);
  job->points = sim::expand_grid(job->deck).size();
  job->owner = client;
  job->deadline_s = deadline_s > 0.0 ? deadline_s : cfg_.default_deadline_s;
  try {
    persist_deck(*job);
  } catch (const std::exception& e) {
    out.admission = Admission::kBadDeck;
    out.error = std::string("cannot persist deck: ") + e.what();
    return out;
  }
  if (client != 0) ++active_per_client_[client];
  // The jobs_ map is bookkeeping, not the source of truth for results
  // (that is the cache + the state_dir); keep it from growing without
  // bound under unique-deck floods by dropping old terminal entries.
  if (jobs_.size() >= cfg_.max_tracked_jobs) {
    for (auto jt = jobs_.begin(); jt != jobs_.end();) {
      if (job_state_terminal(jt->second->state)) {
        jt = jobs_.erase(jt);
      } else {
        ++jt;
      }
    }
  }
  jobs_[out.id] = job;
  queue_.push_back(std::move(job));
  stats_.bump(stats_.jobs_submitted);
  work_cv_.notify_one();
  out.admission = Admission::kAccepted;
  return out;
}

bool JobManager::status(const std::string& id, JobStatus& out) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const Job& j = *it->second;
  out.id = j.id;
  out.state = j.state;
  out.cached = j.cached;
  out.recovered = j.recovered;
  out.rounds = j.rounds.load(std::memory_order_relaxed);
  out.trials = j.trials.load(std::memory_order_relaxed);
  out.points = j.points;
  out.points_done = j.points_done.load(std::memory_order_relaxed);
  out.error = j.error;
  out.queue_position = 0;
  if (j.state == JobState::kQueued) {
    std::size_t pos = 0;
    for (const JobPtr& q : queue_) {
      if (q->state != JobState::kQueued) continue;
      ++pos;
      if (q.get() == &j) {
        out.queue_position = pos;
        break;
      }
    }
  }
  return true;
}

bool JobManager::result(const std::string& id, ResultOut& out) {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    // The bookkeeping entry may have been pruned (terminal-job
    // eviction) while the curves still sit in the result cache — the
    // id is the digest, so the cache key is recoverable.
    std::uint64_t digest = 0;
    ResultCache::Entry hit;
    if (!parse_digest_id(id, digest) || !cache_.get(digest, hit)) {
      return false;
    }
    out.st.id = id;
    out.st.state = JobState::kDone;
    out.st.cached = true;
    out.curves_json = std::move(hit.curves_json);
    out.curves_csv = std::move(hit.curves_csv);
    return true;
  }
  const Job& j = *it->second;
  out.st.id = j.id;
  out.st.state = j.state;
  out.st.cached = j.cached;
  out.st.recovered = j.recovered;
  out.st.error = j.error;
  if (j.state == JobState::kDone) {
    out.curves_json = j.curves_json;
    out.curves_csv = j.curves_csv;
  }
  return true;
}

bool JobManager::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& j = *it->second;
  if (job_state_terminal(j.state)) return true;  // idempotent
  if (j.state == JobState::kQueued) {
    j.state = JobState::kCancelled;
    j.error = "cancelled while queued";
    remove_files(j);
    if (j.owner != 0) release_client_slot(j.owner);
    stats_.bump(stats_.jobs_cancelled);
    return true;
  }
  // Running: the executor observes the token between trials, abandons
  // the in-flight round and classifies the job when the campaign
  // drains. cancel_requested pins the classification to kCancelled
  // even if a drain shutdown trips the same token concurrently.
  j.cancel_requested = true;
  j.token.cancel();
  return true;
}

void JobManager::release_client(std::uint64_t client) {
  std::lock_guard<std::mutex> lk(m_);
  active_per_client_.erase(client);
  // Orphan the client's jobs so their eventual completion does not
  // decrement a slot that no longer exists.
  for (auto& [id, job] : jobs_) {
    if (job->owner == client) job->owner = 0;
  }
}

void JobManager::release_client_slot(std::uint64_t client) {
  // caller holds m_
  const auto it = active_per_client_.find(client);
  if (it != active_per_client_.end() && it->second > 0) {
    if (--it->second == 0) active_per_client_.erase(it);
  }
}

std::size_t JobManager::queued() const {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t n = 0;
  for (const JobPtr& j : queue_) {
    if (j->state == JobState::kQueued) ++n;
  }
  return n;
}

std::size_t JobManager::recover() {
  if (cfg_.state_dir.empty()) return 0;
  DIR* dir = ::opendir(cfg_.state_dir.c_str());
  if (dir == nullptr) return 0;
  std::vector<std::string> ids;
  while (dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name.size() == 16 + 5 && name.substr(16) == ".deck") {
      ids.push_back(name.substr(0, 16));
    }
  }
  ::closedir(dir);

  std::size_t recovered = 0;
  for (const std::string& id : ids) {
    try {
      const std::string text = read_file(deck_path(id));
      sim::ScenarioDeck deck = sim::parse_deck(text);
      const std::uint64_t digest = sim::deck_digest(deck);
      if (digest_id(digest) != id) {
        // The file does not contain the deck its name promises — do not
        // resurrect it (a corrupt spec must not burn executor time
        // forever), but leave it on disk for post-mortem.
        continue;
      }
      if (file_exists(ckpt_path(id))) {
        // A checkpoint from a different deck (or a torn/corrupt one)
        // would fail the resume; drop it and recompute from scratch
        // rather than refusing the job.
        try {
          const auto info = sim::inspect_checkpoint(
              sim::read_checkpoint_file(ckpt_path(id)));
          if (info.deck_digest != digest) std::remove(ckpt_path(id).c_str());
        } catch (const std::exception&) {
          std::remove(ckpt_path(id).c_str());
        }
      }
      auto job = std::make_shared<Job>();
      job->id = id;
      job->digest = digest;
      job->deck_text = text;
      job->deck = std::move(deck);
      job->points = sim::expand_grid(job->deck).size();
      job->recovered = true;
      job->deadline_s = cfg_.default_deadline_s;
      std::lock_guard<std::mutex> lk(m_);
      if (jobs_.count(id) != 0) continue;
      jobs_[id] = job;
      queue_.push_back(std::move(job));
      ++recovered;
      stats_.bump(stats_.jobs_recovered);
      work_cv_.notify_one();
    } catch (const std::exception&) {
      continue;  // unreadable spec: skip, keep serving
    }
  }
  return recovered;
}

void JobManager::executor_loop() {
  while (true) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lk(m_);
      work_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      if (job->state != JobState::kQueued) continue;  // cancelled
      job->state = JobState::kRunning;
    }
    run_job(job);
  }
}

void JobManager::run_job(const JobPtr& job) {
  job->token.set_deadline_after(job->deadline_s);

  sim::RunOptions opts;
  opts.threads = cfg_.pool_threads;
  opts.cancel = &job->token;
  if (!cfg_.state_dir.empty()) {
    opts.checkpoint_path = ckpt_path(job->id);
    opts.resume = true;  // missing file = fresh start
  }
  std::size_t last_trials = 0;
  opts.on_round = [this, &job, &last_trials](std::size_t rounds,
                                             std::size_t points_done,
                                             std::size_t trials) {
    job->rounds.store(rounds, std::memory_order_relaxed);
    job->points_done.store(points_done, std::memory_order_relaxed);
    job->trials.store(trials, std::memory_order_relaxed);
    stats_.bump(stats_.rounds_executed);
    stats_.bump(stats_.trials_executed, trials - last_trials);
    last_trials = trials;
  };

  std::string curves_json, curves_csv, error;
  bool failed = false;
  sim::CampaignResult result;
  try {
    sim::Campaign campaign(job->deck);
    result = campaign.run(opts);
    if (!result.halted) {
      curves_json = sim::curves_json(campaign.deck(), result);
      curves_csv = sim::curves_csv(campaign.deck(), result);
    }
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  std::lock_guard<std::mutex> lk(m_);
  if (job->owner != 0) {
    release_client_slot(job->owner);
    job->owner = 0;
  }
  if (failed) {
    job->state = JobState::kFailed;
    job->error = error;
    remove_files(*job);
    stats_.bump(stats_.jobs_failed);
  } else if (!result.halted) {
    job->state = JobState::kDone;
    job->curves_json = std::move(curves_json);
    job->curves_csv = std::move(curves_csv);
    cache_.put(job->digest,
               {job->curves_json, job->curves_csv});
    remove_files(*job);
    stats_.bump(stats_.jobs_completed);
  } else if (job->cancel_requested) {
    // Explicit client cancel outranks the drain handoff below: a job
    // the client killed must stay dead across a restart, not be
    // re-queued (files kept) and resurrected by the next process.
    job->state = JobState::kCancelled;
    job->error = "cancelled";
    remove_files(*job);
    stats_.bump(stats_.jobs_cancelled);
  } else if (draining_) {
    // Drain handoff: the checkpoint (if any) is at the last round
    // boundary, the deck file is still on disk — the NEXT process
    // recovers this job and finishes it bit-identically.
    job->state = JobState::kQueued;
  } else if (result.deadline_expired) {
    job->state = JobState::kExpired;
    job->error = "deadline exceeded after " +
                 std::to_string(job->rounds.load()) + " round(s)";
    remove_files(*job);
    stats_.bump(stats_.jobs_expired);
  } else {
    job->state = JobState::kCancelled;
    job->error = "cancelled";
    remove_files(*job);
    stats_.bump(stats_.jobs_cancelled);
  }
}

void JobManager::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stopping_) return;
    stopping_ = true;
    draining_ = drain;
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) {
        job->token.cancel();
      } else if (job->state == JobState::kQueued && !drain) {
        job->state = JobState::kCancelled;
        job->error = "server shutdown";
        remove_files(*job);
      }
      // drain: queued jobs stay persisted for the next process.
    }
    work_cv_.notify_all();
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
}

}  // namespace ofdm::net
