// The ofdm_serverd TCP front end: line-oriented JSON protocol over a
// thread-per-connection loop, dispatching into the JobManager (campaign
// service) and the Mother Model transmitter (waveform service).
//
// Robustness posture (DESIGN.md §15):
//  - every read is bounded: lines over max_line_bytes are rejected and
//    discarded to the next newline, connections accumulate protocol
//    errors and are dropped at max_protocol_errors;
//  - idle connections are disconnected after idle_timeout_s (a "bye"
//    event is sent first, so well-behaved clients can distinguish a
//    timeout from a crash);
//  - every write is bounded too: sockets are non-blocking and a peer
//    that stops reading mid-stream for send_timeout_s is dropped, so a
//    stalled client can never pin a session thread through stop();
//  - the accept loop enforces max_connections (excess connections get a
//    busy error line and an immediate close);
//  - stop(drain=true) is the SIGTERM path: stop accepting, nudge every
//    session closed, quiesce the job manager so running campaigns
//    checkpoint and re-queue on disk for the next process.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/jobs.hpp"
#include "net/json.hpp"
#include "net/stats.hpp"

namespace ofdm::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  std::size_t max_connections = 64;
  double idle_timeout_s = 300.0;  ///< 0 = never disconnect idle clients
  /// Drop a connection whose peer stops reading for this long while we
  /// have bytes to send (stalled receive window); 0 = wait forever.
  double send_timeout_s = 30.0;
  std::size_t max_line_bytes = 1u << 20;
  std::size_t max_protocol_errors = 8;  ///< per connection, then close
  std::size_t client_quota = 4;  ///< active jobs per connection; 0 = off
  double retry_after_s = 0.5;    ///< backpressure hint on queue_full
  /// Waveform service bounds: per-request burst/sample caps and the
  /// samples-per-"iq"-event chunk size.
  std::size_t max_bursts = 64;
  std::size_t max_waveform_samples = 1u << 22;
  std::size_t iq_chunk_samples = 4096;
  /// Remote {"op":"shutdown"} support (tests, orchestration). The op
  /// only raises shutdown_requested(); the owner decides when to stop().
  bool allow_remote_shutdown = true;
  JobConfig jobs;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();  ///< stop(false) if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + recover persisted jobs + start the accept thread.
  /// Throws NetError when the socket cannot be set up.
  void start();

  /// Stop accepting, close every session, shut the job manager down
  /// (drain=true => running jobs checkpoint and stay on disk).
  /// Idempotent; safe to call from signal-observing main loops (NOT
  /// from signal handlers or from inside a session thread).
  void stop(bool drain);

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Set by {"op":"shutdown"}; the embedding main loop polls this.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  bool shutdown_drain() const {
    return shutdown_drain_.load(std::memory_order_acquire);
  }

  std::uint16_t port() const { return port_; }
  ServerStats& stats() { return stats_; }
  JobManager& jobs() { return *jobs_; }
  std::size_t recovered_jobs() const { return recovered_; }

 private:
  struct Session {
    std::thread thread;
    std::atomic<bool> finished{false};
    int fd = -1;
  };

  void accept_loop();
  void session_loop(Session* session, std::uint64_t client);
  /// Handle one request line. Returns false when the connection must
  /// close (fatal protocol state or remote shutdown).
  bool handle_line(int fd, std::uint64_t client, const std::string& line,
                   std::size_t& errors);
  /// Returns false when the connection must close (peer gone or its
  /// send stalled past send_timeout_s mid-stream).
  bool handle_waveform(int fd, const Json& req);
  Json handle_submit(std::uint64_t client, const Json& req);
  Json handle_status(const Json& req);
  Json handle_result(const Json& req);
  Json handle_cancel(const Json& req);
  Json handle_stats();
  bool send_line(int fd, const Json& value);
  bool send_raw(int fd, const std::string& line);
  void reap_finished(bool all);

  ServerConfig cfg_;
  ServerStats stats_;
  std::unique_ptr<JobManager> jobs_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::size_t recovered_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> shutdown_drain_{false};
  std::thread accept_thread_;
  std::uint64_t next_client_ = 0;

  std::mutex sessions_m_;
  std::list<Session> sessions_;
};

}  // namespace ofdm::net
