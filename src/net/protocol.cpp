#include "net/protocol.hpp"

#include <cstring>

namespace ofdm::net {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

// 256-entry reverse table; 0xFF = invalid byte.
struct Reverse {
  std::uint8_t v[256];
  constexpr Reverse() : v() {
    for (int i = 0; i < 256; ++i) v[i] = 0xFF;
    for (int i = 0; i < 64; ++i) {
      v[static_cast<unsigned char>(kAlphabet[i])] =
          static_cast<std::uint8_t>(i);
    }
  }
};
constexpr Reverse kReverse;
}  // namespace

std::string base64_encode(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(((bytes.size() + 2) / 3) * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                            (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                            bytes[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
  }
  const std::size_t rem = bytes.size() - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(bytes[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                            (static_cast<std::uint32_t>(bytes[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::vector<std::uint8_t> base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    throw NetError("base64: length " + std::to_string(text.size()) +
                   " is not a multiple of 4");
  }
  std::vector<std::uint8_t> out;
  out.reserve((text.size() / 4) * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    const bool last = i + 4 == text.size();
    int pad = 0;
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      const unsigned char c = static_cast<unsigned char>(text[i + k]);
      if (c == '=') {
        // padding is only legal in the last group's final positions
        if (!last || k < 2 || (k == 2 && text[i + 3] != '=')) {
          throw NetError("base64: misplaced '='");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      const std::uint8_t d = kReverse.v[c];
      if (d == 0xFF) {
        throw NetError("base64: invalid byte at offset " +
                       std::to_string(i + k));
      }
      if (pad > 0) throw NetError("base64: data after '='");
      v = (v << 6) | d;
    }
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  }
  return out;
}

std::string pack_iq_f32(std::span<const cplx> samples) {
  std::vector<std::uint8_t> raw(samples.size() * 2 * sizeof(float));
  std::uint8_t* p = raw.data();
  for (const cplx& x : samples) {
    const float re = static_cast<float>(x.real());
    const float im = static_cast<float>(x.imag());
    std::memcpy(p, &re, sizeof re);
    std::memcpy(p + sizeof re, &im, sizeof im);
    p += 2 * sizeof(float);
  }
  return base64_encode(raw);
}

cvec unpack_iq_f32(std::string_view base64) {
  const std::vector<std::uint8_t> raw = base64_decode(base64);
  if (raw.size() % (2 * sizeof(float)) != 0) {
    throw NetError("iq payload: " + std::to_string(raw.size()) +
                   " bytes is not a whole number of float32 (re,im) "
                   "pairs");
  }
  cvec out(raw.size() / (2 * sizeof(float)));
  const std::uint8_t* p = raw.data();
  for (cplx& x : out) {
    float re, im;
    std::memcpy(&re, p, sizeof re);
    std::memcpy(&im, p + sizeof re, sizeof im);
    x = {re, im};
    p += 2 * sizeof(float);
  }
  return out;
}

Json ok_reply(const std::string& op) {
  Json r = Json::object();
  r.set("ok", true);
  r.set("op", op);
  return r;
}

Json error_reply(const std::string& op, const std::string& code,
                 const std::string& detail) {
  Json r = Json::object();
  r.set("ok", false);
  if (!op.empty()) r.set("op", op);
  r.set("error", code);
  if (!detail.empty()) r.set("detail", detail);
  return r;
}

}  // namespace ofdm::net
