#include "net/cache.hpp"

namespace ofdm::net {

bool ResultCache::get(std::uint64_t digest, Entry& out) {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = index_.find(digest);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  out = it->second->second;
  ++hits_;
  return true;
}

void ResultCache::put(std::uint64_t digest, Entry entry) {
  const std::size_t sz = entry_bytes(entry);
  std::lock_guard<std::mutex> lk(m_);
  if (sz > max_bytes_) return;  // would evict everything and still not fit
  const auto it = index_.find(digest);
  if (it != index_.end()) {
    bytes_ -= entry_bytes(it->second->second);
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.emplace_front(digest, std::move(entry));
  index_[digest] = lru_.begin();
  bytes_ += sz;
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const auto& [old_digest, old_entry] = lru_.back();
    bytes_ -= entry_bytes(old_entry);
    index_.erase(old_digest);
    lru_.pop_back();
  }
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lk(m_);
  return lru_.size();
}

std::size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lk(m_);
  return bytes_;
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lk(m_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lk(m_);
  return misses_;
}

}  // namespace ofdm::net
