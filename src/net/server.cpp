#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/params_io.hpp"
#include "core/transmitter.hpp"
#include "net/protocol.hpp"
#include "sim/deck.hpp"

namespace ofdm::net {

namespace {

constexpr int kPollMs = 100;  // stop-flag / idle-check granularity

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Finite and inside [lo, hi] — the only doubles safe to static_cast
/// to an unsigned integer of the matching range (NaN fails too: every
/// comparison with NaN is false, so naive `v < lo || v > hi` lets it
/// through into undefined-behavior territory).
bool in_range(double v, double lo, double hi) {
  return std::isfinite(v) && v >= lo && v <= hi;
}

/// Largest double whose static_cast to uint64_t/size_t is exact.
constexpr double kMaxExactDouble = 9007199254740992.0;  // 2^53
/// Deadline cap: generous for any real campaign, but small enough that
/// the duration_cast to steady_clock ticks cannot overflow.
constexpr double kMaxDeadlineS = 1e8;  // ~3 years

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  jobs_ = std::make_unique<JobManager>(cfg_.jobs, stats_);
}

Server::~Server() { stop(false); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;

  recovered_ = jobs_->recover();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError("socket(): " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NetError("bad listen address '" + cfg_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw NetError("bind(" + cfg_.host + ":" + std::to_string(cfg_.port) +
                   "): " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw NetError("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop(bool drain) {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    jobs_->shutdown(drain);  // cover the never-started case
    return;
  }
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  reap_finished(/*all=*/true);  // sessions see stopping_ within kPollMs
  jobs_->shutdown(drain);
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    reap_finished(/*all=*/false);

    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r <= 0) continue;

    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    // Non-blocking from the first byte: send_raw() must be able to
    // poll for writability and honor stopping_ / send_timeout_s.
    set_nonblocking(fd);

    if (stats_.connections_active.load(std::memory_order_relaxed) >=
        cfg_.max_connections) {
      stats_.bump(stats_.connections_rejected);
      send_line(fd, error_reply("", kErrBusy, "connection limit reached"));
      ::close(fd);
      continue;
    }

    const std::uint64_t client = ++next_client_;
    std::lock_guard<std::mutex> lk(sessions_m_);
    sessions_.emplace_back();
    Session* s = &sessions_.back();
    s->fd = fd;
    s->thread = std::thread([this, s, client] { session_loop(s, client); });
  }
}

void Server::reap_finished(bool all) {
  std::lock_guard<std::mutex> lk(sessions_m_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (all || it->finished.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::session_loop(Session* session, std::uint64_t client) {
  const int fd = session->fd;
  stats_.bump(stats_.connections_total);
  stats_.connections_active.fetch_add(1, std::memory_order_relaxed);

  std::string buffer;
  bool discarding = false;  // inside an oversized line, looking for '\n'
  std::size_t errors = 0;
  auto last_activity = Clock::now();
  bool open = true;

  while (open && !stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) {
      if (cfg_.idle_timeout_s > 0.0 &&
          seconds_since(last_activity) > cfg_.idle_timeout_s) {
        Json bye = Json::object();
        bye.set("ev", "bye").set("reason", "idle_timeout");
        send_line(fd, bye);
        stats_.bump(stats_.idle_disconnects);
        break;
      }
      continue;
    }

    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    last_activity = Clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (discarding) {
        // This newline terminates the oversized line that was already
        // rejected; everything before it is its tail.
        discarding = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > cfg_.max_line_bytes) {
        stats_.bump(stats_.protocol_errors);
        send_line(fd, error_reply("", kErrOversizedFrame,
                                  "line exceeds " +
                                      std::to_string(cfg_.max_line_bytes) +
                                      " bytes"));
        if (++errors >= cfg_.max_protocol_errors) open = false;
        continue;
      }
      open = handle_line(fd, client, line, errors);
    }
    if (discarding) {
      // Still no newline: everything buffered is more tail of the
      // already-rejected line. Drop it, or an endless line with no
      // newline would grow the buffer without bound.
      buffer.clear();
    } else if (open && buffer.size() > cfg_.max_line_bytes) {
      stats_.bump(stats_.protocol_errors);
      send_line(fd, error_reply("", kErrOversizedFrame,
                                "line exceeds " +
                                    std::to_string(cfg_.max_line_bytes) +
                                    " bytes"));
      buffer.clear();
      discarding = true;
      if (++errors >= cfg_.max_protocol_errors) open = false;
    }
  }

  jobs_->release_client(client);
  ::close(fd);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  session->finished.store(true, std::memory_order_release);
}

bool Server::handle_line(int fd, std::uint64_t client,
                         const std::string& line, std::size_t& errors) {
  Json req;
  try {
    req = json_parse(line);
  } catch (const NetError& e) {
    stats_.bump(stats_.protocol_errors);
    send_line(fd, error_reply("", kErrBadJson, e.what()));
    return ++errors < cfg_.max_protocol_errors;
  }

  const Json* opv = req.find("op");
  if (!req.is_object() || opv == nullptr || !opv->is_string()) {
    stats_.bump(stats_.protocol_errors);
    send_line(fd, error_reply("", kErrBadRequest,
                              "request must be an object with a string 'op'"));
    return ++errors < cfg_.max_protocol_errors;
  }
  const std::string& op = opv->as_string();
  stats_.bump(stats_.requests);

  if (op == "ping") {
    Json reply = ok_reply("ping");
    reply.set("server", "ofdm_serverd");
    return send_line(fd, reply);
  }
  if (op == "stats") return send_line(fd, handle_stats());
  if (op == "waveform") return handle_waveform(fd, req);
  if (op == "submit") return send_line(fd, handle_submit(client, req));
  if (op == "status") return send_line(fd, handle_status(req));
  if (op == "result") return send_line(fd, handle_result(req));
  if (op == "cancel") return send_line(fd, handle_cancel(req));
  if (op == "shutdown") {
    if (!cfg_.allow_remote_shutdown) {
      send_line(fd, error_reply(op, kErrBadRequest,
                                "remote shutdown is disabled"));
      return true;
    }
    const bool drain = req.bool_or("drain", true);
    Json reply = ok_reply("shutdown");
    reply.set("drain", drain);
    // Flags before the reply: a client that has read the ack must be
    // able to observe shutdown_requested() without racing this thread.
    shutdown_drain_.store(drain, std::memory_order_release);
    shutdown_requested_.store(true, std::memory_order_release);
    send_line(fd, reply);
    return false;  // close this connection; owner's loop does the stop
  }

  stats_.bump(stats_.protocol_errors);
  send_line(fd, error_reply(op, kErrUnknownOp, "unknown op '" + op + "'"));
  return ++errors < cfg_.max_protocol_errors;
}

bool Server::handle_waveform(int fd, const Json& req) {
  stats_.bump(stats_.waveform_requests);
  const std::string standard = req.str_or("standard", "");
  const std::string params_text = req.str_or("params", "");
  if (standard.empty() == params_text.empty()) {
    return send_line(fd,
                     error_reply("waveform", kErrBadRequest,
                                 "provide exactly one of 'standard'/'params'"));
  }
  const double bursts_d = req.num_or("bursts", 1.0);
  const double payload_d = req.num_or("payload_bits", 0.0);
  const double seed_d = req.num_or("seed", 1.0);
  const double chunk_d = req.num_or("chunk",
                                    static_cast<double>(cfg_.iq_chunk_samples));
  // Every bound is checked on the double BEFORE any cast: a value like
  // 1e300 (or an overflow-parsed inf) static_cast to an integer is UB.
  if (!in_range(bursts_d, 1.0, static_cast<double>(cfg_.max_bursts)) ||
      !in_range(payload_d, 0.0, 1048576.0) ||
      !in_range(seed_d, 0.0, kMaxExactDouble) ||
      !in_range(chunk_d, 1.0, kMaxExactDouble)) {
    return send_line(
        fd, error_reply("waveform", kErrBadRequest,
                        "bursts/payload_bits/seed/chunk out of range"));
  }
  const auto bursts = static_cast<std::size_t>(bursts_d);
  const auto payload_bits = static_cast<std::size_t>(payload_d);
  const auto seed = static_cast<std::uint64_t>(seed_d);
  const auto chunk = static_cast<std::size_t>(
      std::min(std::max(chunk_d, 64.0), 65536.0));

  core::Transmitter tx;
  try {
    tx.configure(standard.empty()
                     ? core::from_text(params_text)
                     : sim::parse_standard_token(standard).params);
  } catch (const std::exception& e) {
    return send_line(fd, error_reply("waveform", kErrBadDeck, e.what()));
  }
  const std::size_t pb =
      payload_bits != 0 ? payload_bits : tx.recommended_payload_bits();

  std::size_t total = 0;
  for (std::size_t b = 0; b < bursts; ++b) {
    Rng rng = Rng::substream(seed, /*point=*/0, /*trial=*/b);
    const bitvec payload = rng.bits(pb);
    core::Transmitter::Burst burst;
    try {
      burst = tx.modulate(payload);
    } catch (const std::exception& e) {
      return send_line(fd, error_reply("waveform", kErrInternal, e.what()));
    }
    if (b == 0 && burst.samples.size() * bursts > cfg_.max_waveform_samples) {
      return send_line(
          fd, error_reply("waveform", kErrOversizedFrame,
                          "request would stream " +
                              std::to_string(burst.samples.size() * bursts) +
                              " samples (cap " +
                              std::to_string(cfg_.max_waveform_samples) +
                              ")"));
    }
    std::size_t seq = 0;
    for (std::size_t off = 0; off < burst.samples.size(); off += chunk) {
      const std::size_t n = std::min(chunk, burst.samples.size() - off);
      Json ev = Json::object();
      ev.set("ev", "iq")
          .set("burst", b)
          .set("seq", seq++)
          .set("n", n)
          .set("data", pack_iq_f32({burst.samples.data() + off, n}));
      if (!send_line(fd, ev)) return false;  // peer gone or stalled
    }
    total += burst.samples.size();
  }
  stats_.bump(stats_.waveform_samples, total);

  Json done = ok_reply("waveform");
  done.set("bursts", bursts)
      .set("samples", total)
      .set("payload_bits", pb)
      .set("seed", seed);
  return send_line(fd, done);
}

Json Server::handle_submit(std::uint64_t client, const Json& req) {
  const Json* deck = req.find("deck");
  if (deck == nullptr || !deck->is_string()) {
    return error_reply("submit", kErrBadRequest, "missing string 'deck'");
  }
  const double deadline_s = req.num_or("deadline_s", 0.0);
  if (!in_range(deadline_s, 0.0, kMaxDeadlineS)) {
    return error_reply("submit", kErrBadRequest,
                       "deadline_s out of range (0 .. 1e8)");
  }
  const auto r =
      jobs_->submit(deck->as_string(), deadline_s, client, cfg_.client_quota);

  switch (r.admission) {
    case JobManager::Admission::kAccepted: {
      Json reply = ok_reply("submit");
      reply.set("id", r.id).set("state", "queued");
      return reply;
    }
    case JobManager::Admission::kAttached:
    case JobManager::Admission::kCached: {
      JobStatus st;
      Json reply = ok_reply("submit");
      reply.set("id", r.id)
          .set("state",
               jobs_->status(r.id, st) ? job_state_name(st.state) : "queued")
          .set("attached", r.admission == JobManager::Admission::kAttached)
          .set("cached", r.admission == JobManager::Admission::kCached ||
                             (jobs_->status(r.id, st) && st.cached));
      return reply;
    }
    case JobManager::Admission::kQueueFull: {
      Json reply = error_reply("submit", kErrQueueFull, "job queue is full");
      reply.set("retry_after_s", cfg_.retry_after_s);
      return reply;
    }
    case JobManager::Admission::kQuota: {
      Json reply = error_reply("submit", kErrQuotaExceeded,
                               "client active-job quota reached");
      reply.set("retry_after_s", cfg_.retry_after_s);
      return reply;
    }
    case JobManager::Admission::kBadDeck:
      return error_reply("submit", kErrBadDeck, r.error);
    case JobManager::Admission::kShutdown:
      return error_reply("submit", kErrShuttingDown, "server is draining");
  }
  return error_reply("submit", kErrInternal, "unreachable");
}

namespace {

Json status_reply(const char* op, const JobStatus& st) {
  Json reply = ok_reply(op);
  reply.set("id", st.id)
      .set("state", job_state_name(st.state))
      .set("cached", st.cached)
      .set("recovered", st.recovered)
      .set("rounds", st.rounds)
      .set("trials", st.trials)
      .set("points", st.points)
      .set("points_done", st.points_done);
  if (st.state == JobState::kQueued) {
    reply.set("queue_position", st.queue_position);
  }
  if (!st.error.empty()) reply.set("detail", st.error);
  return reply;
}

}  // namespace

Json Server::handle_status(const Json& req) {
  const std::string id = req.str_or("id", "");
  JobStatus st;
  if (id.empty() || !jobs_->status(id, st)) {
    return error_reply("status", kErrUnknownJob, "unknown job '" + id + "'");
  }
  return status_reply("status", st);
}

Json Server::handle_result(const Json& req) {
  const std::string id = req.str_or("id", "");
  const std::string format = req.str_or("format", "json");
  if (format != "json" && format != "csv") {
    return error_reply("result", kErrBadRequest,
                       "format must be 'json' or 'csv'");
  }
  JobManager::ResultOut out;
  if (id.empty() || !jobs_->result(id, out)) {
    return error_reply("result", kErrUnknownJob, "unknown job '" + id + "'");
  }
  if (out.st.state == JobState::kQueued || out.st.state == JobState::kRunning) {
    Json reply = error_reply("result", kErrNotDone,
                             "job is " + std::string(job_state_name(
                                             out.st.state)));
    reply.set("id", id).set("state", job_state_name(out.st.state));
    return reply;
  }
  if (out.st.state != JobState::kDone) {
    Json reply = error_reply("result", kErrJobFailed, out.st.error);
    reply.set("id", id).set("state", job_state_name(out.st.state));
    return reply;
  }
  Json reply = ok_reply("result");
  reply.set("id", id)
      .set("state", "done")
      .set("cached", out.st.cached)
      .set("format", format)
      .set("curves", format == "json" ? out.curves_json : out.curves_csv);
  return reply;
}

Json Server::handle_cancel(const Json& req) {
  const std::string id = req.str_or("id", "");
  if (id.empty() || !jobs_->cancel(id)) {
    return error_reply("cancel", kErrUnknownJob, "unknown job '" + id + "'");
  }
  Json reply = ok_reply("cancel");
  reply.set("id", id);
  return reply;
}

Json Server::handle_stats() {
  const ServerStats& s = stats_;
  const auto get = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  Json reply = ok_reply("stats");
  reply.set("connections_total", get(s.connections_total))
      .set("connections_active", get(s.connections_active))
      .set("connections_rejected", get(s.connections_rejected))
      .set("idle_disconnects", get(s.idle_disconnects))
      .set("protocol_errors", get(s.protocol_errors))
      .set("requests", get(s.requests))
      .set("waveform_requests", get(s.waveform_requests))
      .set("waveform_samples", get(s.waveform_samples))
      .set("jobs_submitted", get(s.jobs_submitted))
      .set("jobs_completed", get(s.jobs_completed))
      .set("jobs_failed", get(s.jobs_failed))
      .set("jobs_cancelled", get(s.jobs_cancelled))
      .set("jobs_expired", get(s.jobs_expired))
      .set("jobs_recovered", get(s.jobs_recovered))
      .set("rejected_queue_full", get(s.rejected_queue_full))
      .set("rejected_quota", get(s.rejected_quota))
      .set("rounds_executed", get(s.rounds_executed))
      .set("trials_executed", get(s.trials_executed))
      .set("jobs_queued", jobs_->queued())
      .set("cache_entries", jobs_->cache().entries())
      .set("cache_bytes", jobs_->cache().bytes())
      .set("cache_hits", jobs_->cache().hits())
      .set("cache_misses", jobs_->cache().misses());
  return reply;
}

bool Server::send_line(int fd, const Json& value) {
  return send_raw(fd, value.dump() + "\n");
}

bool Server::send_raw(int fd, const std::string& line) {
  // The socket is non-blocking: poll for writability in kPollMs slices
  // so a peer that stops reading (a stalled waveform stream can be
  // megabytes) cannot pin this session thread. Both the stop flag and
  // the cumulative-stall timeout break the wait — Server::stop() must
  // never hang on one wedged client.
  std::size_t off = 0;
  double stalled_s = 0.0;
  while (off < line.size()) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    const ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      stalled_s = 0.0;  // peer is reading again
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      const int r = ::poll(&pfd, 1, kPollMs);
      if (r < 0 && errno != EINTR) return false;
      stalled_s += kPollMs / 1000.0;
      if (cfg_.send_timeout_s > 0.0 && stalled_s >= cfg_.send_timeout_s) {
        return false;  // peer wedged: drop the connection
      }
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace ofdm::net
