// Multi-tenant campaign job queue with a fault-tolerant lifecycle.
//
// Job state machine (DESIGN.md §15):
//
//   submit ──> queued ──> running ──> done
//                │           │   ├──> failed     (trial/deck error)
//                │           │   ├──> expired    (deadline passed)
//                └───────────┴──-┴──> cancelled  (client request)
//   SIGTERM drain:   running ──> queued (checkpointed, files kept)
//   process restart: *.deck [+ *.ckpt] on disk ──> queued (recovered)
//
// Robustness properties, in order of importance:
//  - Bounded admission: at most `max_queued` jobs wait; beyond that
//    submit() reports queue-full and the caller replies with a
//    retry_after hint instead of buffering without limit.
//  - Per-client quotas: a single client can hold at most
//    `quota` active (queued+running) jobs; a disconnected client's
//    jobs keep running (their results are cacheable for everyone).
//  - Deadlines and cancellation ride the campaign engine's CancelToken
//    (polled between trials): a wedged or oversized job cannot pin an
//    executor forever once a deadline is set.
//  - Durability: with a state_dir, a job's deck is persisted on submit
//    and its checkpoint advances at every round boundary (atomic
//    temp+rename, sim/checkpoint). kill -9 at ANY instant loses at most
//    the in-flight round; recover() re-queues the job and the campaign
//    engine's determinism contract makes the resumed curves
//    byte-identical to an uninterrupted run.
//  - Identity: job id == deck digest (16 hex chars). Submitting a deck
//    that is already queued/running attaches to the existing job;
//    submitting one whose curves are cached returns a done job without
//    spawning a single trial.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/cache.hpp"
#include "net/stats.hpp"
#include "sim/campaign.hpp"

namespace ofdm::net {

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kExpired,
};

const char* job_state_name(JobState s);
bool job_state_terminal(JobState s);

struct JobConfig {
  /// Concurrent campaign executors (each runs one job at a time on its
  /// own work-stealing pool of `pool_threads` workers).
  std::size_t executors = 2;
  std::size_t pool_threads = 2;
  /// Bounded admission: maximum jobs in `queued` (running not counted).
  std::size_t max_queued = 16;
  /// Deadline applied to jobs that do not request one; 0 = none.
  double default_deadline_s = 0.0;
  /// Persistence root for <id>.deck / <id>.ckpt; empty disables
  /// durability (jobs die with the process).
  std::string state_dir;
  /// Result-cache capacity in bytes.
  std::size_t cache_bytes = 8u << 20;
  /// Terminal jobs are pruned from the bookkeeping map once it holds
  /// this many entries (done results stay fetchable via the cache).
  std::size_t max_tracked_jobs = 4096;
};

/// Point-in-time job description for status/result replies.
struct JobStatus {
  std::string id;
  JobState state = JobState::kQueued;
  bool cached = false;      ///< result came from the cache
  bool recovered = false;   ///< re-queued from disk after a restart
  std::size_t rounds = 0;   ///< rounds completed in THIS process
  std::size_t trials = 0;   ///< trials reduced in THIS process
  std::size_t points = 0;
  std::size_t points_done = 0;
  std::size_t queue_position = 0;  ///< 0 = running/terminal, else 1-based
  std::string error;               ///< failed/expired detail
};

class JobManager {
 public:
  JobManager(JobConfig cfg, ServerStats& stats);
  ~JobManager();  ///< shutdown(false) if still running

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  enum class Admission {
    kAccepted,   ///< new job queued
    kAttached,   ///< identical deck already queued/running/terminal
    kCached,     ///< served from the result cache, no work spawned
    kQueueFull,  ///< bounded queue at capacity — retry later
    kQuota,      ///< client's active-job quota exhausted
    kBadDeck,    ///< deck failed to parse/validate (detail in error)
    kShutdown,   ///< manager is draining/stopping
  };

  struct SubmitResult {
    Admission admission = Admission::kAccepted;
    std::string id;
    std::string error;  ///< kBadDeck parse message
  };

  /// Validate + admit a scenario deck for `client` (0 = anonymous; used
  /// only for quota accounting). `deadline_s` <= 0 applies the default.
  SubmitResult submit(const std::string& deck_text, double deadline_s,
                      std::uint64_t client, std::size_t quota);

  /// Snapshot a job's state; false when the id is unknown.
  bool status(const std::string& id, JobStatus& out) const;

  /// Fetch a finished job's curves; false when unknown. When the job is
  /// not done, `out.state` tells the caller what to reply. A done job
  /// pruned from the bookkeeping map is still served from the result
  /// cache (the id IS the digest), so a slow poller never sees its
  /// finished result turn into unknown_job. Non-const: a cache hit
  /// refreshes LRU order.
  struct ResultOut {
    JobStatus st;
    std::string curves_json;
    std::string curves_csv;
  };
  bool result(const std::string& id, ResultOut& out);

  /// Cooperatively cancel a queued or running job (idempotent; false
  /// when the id is unknown).
  bool cancel(const std::string& id);

  /// Drop `client`'s quota accounting (connection closed). Jobs keep
  /// running — a popular result must not die with its first requester.
  void release_client(std::uint64_t client);

  /// Scan state_dir for persisted jobs (crash or drain leftovers) and
  /// re-queue them; returns how many were recovered. Call once, before
  /// serving traffic.
  std::size_t recover();

  /// Stop executors. drain=true lets running jobs checkpoint and
  /// re-queue on disk (kill -resistant handoff to the next process);
  /// drain=false cancels them outright. Idempotent.
  void shutdown(bool drain);

  ResultCache& cache() { return cache_; }
  std::size_t queued() const;

 private:
  struct Job;
  using JobPtr = std::shared_ptr<Job>;

  void executor_loop();
  void run_job(const JobPtr& job);
  void release_client_slot(std::uint64_t client);  // caller holds m_
  void persist_deck(const Job& job);
  void remove_files(const Job& job);
  std::string deck_path(const std::string& id) const;
  std::string ckpt_path(const std::string& id) const;

  JobConfig cfg_;
  ServerStats& stats_;
  ResultCache cache_;

  mutable std::mutex m_;
  std::condition_variable work_cv_;
  bool stopping_ = false;
  bool draining_ = false;
  std::deque<JobPtr> queue_;                    // queued jobs, FIFO
  std::map<std::string, JobPtr> jobs_;          // id -> job (all states)
  std::map<std::uint64_t, std::size_t> active_per_client_;
  std::vector<std::thread> executors_;
};

}  // namespace ofdm::net
