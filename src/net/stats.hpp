// Shared daemon counters: lock-free probes in the style of src/obs —
// every counter is a relaxed atomic bumped on the hot path and read
// coherently enough for monitoring, tests and the bench gate (the
// loopback suite asserts e.g. "second identical submission executed
// zero trials" through these).
#pragma once

#include <atomic>
#include <cstdint>

namespace ofdm::net {

struct ServerStats {
  // connection lifecycle
  std::atomic<std::uint64_t> connections_total{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::uint64_t> idle_disconnects{0};
  std::atomic<std::uint64_t> protocol_errors{0};

  // request counters
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> waveform_requests{0};
  std::atomic<std::uint64_t> waveform_samples{0};

  // job lifecycle
  std::atomic<std::uint64_t> jobs_submitted{0};
  std::atomic<std::uint64_t> jobs_completed{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  std::atomic<std::uint64_t> jobs_cancelled{0};
  std::atomic<std::uint64_t> jobs_expired{0};
  std::atomic<std::uint64_t> jobs_recovered{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_quota{0};

  // work actually performed by the campaign engine in this process
  std::atomic<std::uint64_t> rounds_executed{0};
  std::atomic<std::uint64_t> trials_executed{0};

  void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }
};

}  // namespace ofdm::net
