// Blocking line-protocol client for ofdm_serverd: used by the loopback
// test suite, the server bench and the ofdm_client CLI. One connection,
// one request/reply (or request/stream) at a time; every receive is
// bounded by a timeout so a wedged or killed daemon surfaces as a
// NetError instead of a hang.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "net/json.hpp"

namespace ofdm::net {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connect with a timeout; throws NetError on refusal/timeout.
  void connect(const std::string& host, std::uint16_t port,
               double timeout_s = 5.0);
  void close();
  bool connected() const { return fd_ >= 0; }
  /// Raw socket, exposed so tests can cut the connection mid-stream.
  int fd() const { return fd_; }

  /// Send one JSON line (newline appended). Throws NetError on a dead
  /// socket.
  void send(const Json& req);
  /// Send raw bytes verbatim — the malformed-input path for tests.
  void send_text(const std::string& bytes);

  /// Receive the next line and parse it; throws NetError on timeout,
  /// EOF, or a line the server should never emit (invalid JSON).
  Json recv_line(double timeout_s = 10.0);

  /// send() + recv_line(): the plain request/reply round trip.
  Json request(const Json& req, double timeout_s = 10.0);

  /// Waveform round trip: sends `req`, appends every "iq" event's
  /// samples to `samples` (validating burst/seq ordering), returns the
  /// terminal reply ({"ok":true,...} or {"ok":false,...}).
  Json waveform(const Json& req, cvec& samples, double timeout_s = 30.0);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace ofdm::net
