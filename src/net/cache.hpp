// Deck-digest result cache: the daemon's "millions of users" lever.
//
// Campaign curves are pure functions of the scenario deck (the engine's
// determinism contract), so the deck digest is a sound cache key:
// identical deck => identical bytes, no staleness to manage. The cache
// memoizes finished curve JSON/CSV under an LRU policy with a byte-size
// cap; a second submission of a popular operating point is served from
// memory without spawning a single trial.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ofdm::net {

class ResultCache {
 public:
  /// `max_bytes` caps the summed curve payload (keys and bookkeeping
  /// are not counted). An entry larger than the whole cap is simply
  /// never stored. 0 disables caching.
  explicit ResultCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  struct Entry {
    std::string curves_json;
    std::string curves_csv;
  };

  /// Look up `digest`; on a hit copies into `out`, refreshes LRU order
  /// and counts a hit, otherwise counts a miss.
  bool get(std::uint64_t digest, Entry& out);

  /// Insert (or refresh) the entry, evicting least-recently-used
  /// entries until the byte cap holds again.
  void put(std::uint64_t digest, Entry entry);

  std::size_t entries() const;
  std::size_t bytes() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  static std::size_t entry_bytes(const Entry& e) {
    return e.curves_json.size() + e.curves_csv.size();
  }

  mutable std::mutex m_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  /// front = most recently used
  std::list<std::pair<std::uint64_t, Entry>> lru_;
  std::unordered_map<std::uint64_t, decltype(lru_)::iterator> index_;
};

}  // namespace ofdm::net
