// Wire protocol of ofdm_serverd: newline-delimited JSON objects over
// TCP, one request or reply/event per line.
//
// Grammar (DESIGN.md §15 has the full table):
//   client -> server   { "op": <string>, ...op fields }
//   server -> client   { "ok": true, ...result fields }
//                    | { "ok": false, "error": <code>, "detail": ... }
//                    | { "ev": "iq"|"end", ... }   (waveform stream)
//
// Every reply carries "op" echoed back, plus "id" when the request had
// one (client-side correlation). Error codes are machine-readable
// snake_case strings; "detail" is human-readable and may change.
//
// Bulk IQ is framed as events: interleaved little-endian float32
// (re,im) pairs, base64-encoded, `chunk` samples per "iq" line — large
// enough to amortize the base64, small enough that a slow client never
// pins megabytes in one write.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "net/json.hpp"

namespace ofdm::net {

/// Error codes (the machine-readable contract; see DESIGN.md §15).
inline constexpr const char* kErrBadJson = "bad_json";
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnknownOp = "unknown_op";
inline constexpr const char* kErrOversizedFrame = "oversized_frame";
inline constexpr const char* kErrBusy = "busy";
inline constexpr const char* kErrBadDeck = "bad_deck";
inline constexpr const char* kErrQueueFull = "queue_full";
inline constexpr const char* kErrQuotaExceeded = "quota_exceeded";
inline constexpr const char* kErrUnknownJob = "unknown_job";
inline constexpr const char* kErrNotDone = "not_done";
inline constexpr const char* kErrJobFailed = "job_failed";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrInternal = "internal";

/// Base64 (RFC 4648, with padding). decode throws NetError on any
/// non-alphabet byte, bad padding, or truncated input.
std::string base64_encode(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> base64_decode(std::string_view text);

/// Pack complex samples as interleaved little-endian float32 base64.
std::string pack_iq_f32(std::span<const cplx> samples);
/// Unpack; throws NetError when the payload is not a whole number of
/// (re,im) float32 pairs.
cvec unpack_iq_f32(std::string_view base64);

/// Reply skeletons. Field order is fixed so replies are byte-stable.
Json ok_reply(const std::string& op);
Json error_reply(const std::string& op, const std::string& code,
                 const std::string& detail);

}  // namespace ofdm::net
