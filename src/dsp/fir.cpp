#include "dsp/fir.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/serial.hpp"
#include "dsp/window.hpp"

namespace ofdm::dsp {

rvec design_lowpass(double cutoff, std::size_t taps) {
  OFDM_REQUIRE(cutoff > 0.0 && cutoff < 0.5,
               "design_lowpass: cutoff must be in (0, 0.5)");
  OFDM_REQUIRE(taps >= 1, "design_lowpass: need at least one tap");
  rvec h(taps);
  const double mid = (static_cast<double>(taps) - 1.0) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    // Symmetric (non-periodic) Hamming for linear phase.
    const double w =
        taps == 1 ? 1.0
                  : 0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) /
                                           static_cast<double>(taps - 1));
    h[i] = 2.0 * cutoff * sinc(2.0 * cutoff * t) * w;
  }
  // Normalize to unity DC gain.
  double sum = 0.0;
  for (double v : h) sum += v;
  if (sum != 0.0) {
    for (double& v : h) v /= sum;
  }
  return h;
}

FirFilter::FirFilter(rvec taps) : taps_(std::move(taps)) {
  OFDM_REQUIRE(!taps_.empty(), "FirFilter: empty tap vector");
  delay_.assign(taps_.size(), cplx{0.0, 0.0});
}

void FirFilter::process(std::span<const cplx> in, std::span<cplx> out) {
  OFDM_REQUIRE_DIM(in.size() == out.size(),
                   "FirFilter::process: in/out size mismatch");
  const std::size_t n_taps = taps_.size();
  for (std::size_t i = 0; i < in.size(); ++i) {
    head_ = (head_ + n_taps - 1) % n_taps;
    delay_[head_] = in[i];
    cplx acc{0.0, 0.0};
    std::size_t idx = head_;
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc += delay_[idx] * taps_[t];
      idx = (idx + 1) % n_taps;
    }
    out[i] = acc;
  }
}

cvec FirFilter::process(std::span<const cplx> in) {
  cvec out(in.size());
  process(in, out);
  return out;
}

void FirFilter::reset() {
  delay_.assign(taps_.size(), cplx{0.0, 0.0});
  head_ = 0;
}

void FirFilter::save_state(StateWriter& w) const {
  w.vec_c(delay_);
  w.u64(head_);
}

void FirFilter::load_state(StateReader& r) {
  cvec delay;
  r.vec_c(delay);
  if (delay.size() != taps_.size()) {
    throw StateError("FirFilter: snapshot delay line has " +
                     std::to_string(delay.size()) + " taps, filter has " +
                     std::to_string(taps_.size()));
  }
  delay_ = std::move(delay);
  head_ = r.u64();
}

cvec convolve(std::span<const cplx> x, std::span<const double> taps) {
  if (x.empty() || taps.empty()) return {};
  cvec out(x.size() + taps.size() - 1, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < taps.size(); ++j) {
      out[i + j] += x[i] * taps[j];
    }
  }
  return out;
}

}  // namespace ofdm::dsp
