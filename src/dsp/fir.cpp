#include "dsp/fir.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/serial.hpp"
#include "dsp/simd/dispatch.hpp"
#include "dsp/window.hpp"

namespace ofdm::dsp {

rvec design_lowpass(double cutoff, std::size_t taps) {
  OFDM_REQUIRE(cutoff > 0.0 && cutoff < 0.5,
               "design_lowpass: cutoff must be in (0, 0.5)");
  OFDM_REQUIRE(taps >= 1, "design_lowpass: need at least one tap");
  rvec h(taps);
  const double mid = (static_cast<double>(taps) - 1.0) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    // Symmetric (non-periodic) Hamming for linear phase.
    const double w =
        taps == 1 ? 1.0
                  : 0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) /
                                           static_cast<double>(taps - 1));
    h[i] = 2.0 * cutoff * sinc(2.0 * cutoff * t) * w;
  }
  // Normalize to unity DC gain.
  double sum = 0.0;
  for (double v : h) sum += v;
  if (sum != 0.0) {
    for (double& v : h) v /= sum;
  }
  return h;
}

FirFilter::FirFilter(rvec taps) : taps_(std::move(taps)) {
  OFDM_REQUIRE(!taps_.empty(), "FirFilter: empty tap vector");
  history_.assign(taps_.size(), cplx{0.0, 0.0});
}

void FirFilter::process(std::span<const cplx> in, std::span<cplx> out) {
  OFDM_REQUIRE_DIM(in.size() == out.size(),
                   "FirFilter::process: in/out size mismatch");
  if (in.empty()) return;
  const std::size_t n_taps = taps_.size();
  const std::size_t hist = n_taps - 1;
  // Lay the chunk out as one contiguous window behind the last
  // n_taps - 1 inputs, so the kernel sees a plain convolution instead
  // of a circular delay line. window_ grows to the largest chunk once
  // and is reused (steady-state zero-alloc).
  window_.resize(hist + in.size());
  std::copy(history_.end() - static_cast<std::ptrdiff_t>(hist),
            history_.end(), window_.begin());
  std::copy(in.begin(), in.end(),
            window_.begin() + static_cast<std::ptrdiff_t>(hist));
  simd::kernels().fir_cr(window_.data(), taps_.data(), n_taps,
                         out.data(), in.size());
  // Slide the chronological history to the last n_taps inputs.
  if (in.size() >= n_taps) {
    std::copy(in.end() - static_cast<std::ptrdiff_t>(n_taps), in.end(),
              history_.begin());
  } else {
    std::move(history_.begin() + static_cast<std::ptrdiff_t>(in.size()),
              history_.end(), history_.begin());
    std::copy(in.begin(), in.end(),
              history_.end() - static_cast<std::ptrdiff_t>(in.size()));
  }
}

cvec FirFilter::process(std::span<const cplx> in) {
  cvec out(in.size());
  process(in, out);
  return out;
}

void FirFilter::reset() {
  history_.assign(taps_.size(), cplx{0.0, 0.0});
}

void FirFilter::save_state(StateWriter& w) const {
  // Serialized as the circular delay line the filter historically kept
  // (newest sample at head_, here canonically head_ == 0), so old and
  // new snapshots stay interchangeable.
  const std::size_t n_taps = taps_.size();
  cvec delay(n_taps);
  for (std::size_t k = 0; k < n_taps; ++k) {
    delay[k] = history_[n_taps - 1 - k];
  }
  w.vec_c(delay);
  w.u64(0);
}

void FirFilter::load_state(StateReader& r) {
  cvec delay;
  r.vec_c(delay);
  if (delay.size() != taps_.size()) {
    throw StateError("FirFilter: snapshot delay line has " +
                     std::to_string(delay.size()) + " taps, filter has " +
                     std::to_string(taps_.size()));
  }
  const std::size_t head = r.u64();
  const std::size_t n_taps = taps_.size();
  for (std::size_t j = 0; j < n_taps; ++j) {
    history_[j] = delay[(head + n_taps - 1 - j) % n_taps];
  }
}

cvec convolve(std::span<const cplx> x, std::span<const double> taps) {
  if (x.empty() || taps.empty()) return {};
  cvec out(x.size() + taps.size() - 1, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < taps.size(); ++j) {
      out[i + j] += x[i] * taps[j];
    }
  }
  return out;
}

}  // namespace ofdm::dsp
