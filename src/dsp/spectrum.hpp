// Power spectral density estimation (Welch's method). The RF simulator's
// spectrum-analyzer sink and the spectral-mask metric are built on this.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"
#include "dsp/window.hpp"

namespace ofdm::dsp {

struct WelchConfig {
  std::size_t segment = 256;             ///< FFT/segment length
  double overlap = 0.5;                  ///< fractional overlap in [0, 1)
  WindowType window = WindowType::kHann;
  double sample_rate = 1.0;              ///< Hz, for the frequency axis
};

struct Psd {
  rvec freq;   ///< frequency axis, DC-centered, length == segment
  rvec power;  ///< linear power density per bin (same ordering as freq)

  /// Total power integrated over all bins (should match mean signal power).
  double total_power() const;
  /// Power in [f_lo, f_hi] (Hz on the DC-centered axis).
  double band_power(double f_lo, double f_hi) const;
  /// Largest bin value in [f_lo, f_hi], linear.
  double peak_in_band(double f_lo, double f_hi) const;
};

/// Welch-averaged, DC-centered PSD of a complex baseband signal. The input
/// must contain at least one full segment.
Psd welch_psd(std::span<const cplx> x, const WelchConfig& cfg);

}  // namespace ofdm::dsp
