// Window functions for spectral analysis and OFDM symbol edge shaping.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace ofdm::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Generate an n-point window of the given type (periodic form, the right
/// choice for spectral averaging).
rvec make_window(WindowType type, std::size_t n);

/// Sum of squared window coefficients (PSD normalization constant).
double window_power(std::span<const double> w);

/// Raised-cosine edge taper used for OFDM symbol windowing: `ramp` samples
/// rise from 0 to 1 following 0.5(1-cos). The caller overlaps consecutive
/// symbols by `ramp` samples so the summed envelope stays flat.
rvec raised_cosine_ramp(std::size_t ramp);

/// Apply a real window to a complex signal in place (sizes must match).
void apply_window(std::span<cplx> x, std::span<const double> w);

}  // namespace ofdm::dsp
