#include "dsp/fft.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "dsp/simd/dispatch.hpp"

namespace ofdm::dsp {

namespace {

// Iterative radix-2 DIT over the simd kernel table. Forward and inverse
// twiddles are precomputed in *stage-major* layout — the stage with
// half = len/2 butterflies per block owns the contiguous slice
// [half - 1, 2*half - 1) — so the butterfly kernels load twiddles
// sequentially instead of at stride n/len. The values are copied from
// the classic k/n table, so the layout change moves no bits. An output
// scale factor is folded into the final stage so the inverse's 1/N
// never costs a separate sweep over the buffer.
struct Radix2Plan {
  std::size_t n = 0;
  std::vector<std::size_t> bitrev;   // bit-reversal permutation
  cvec stage_tw;                     // stage-major e^{-j2πk/n} slices
  cvec stage_tw_inv;                 // conjugate table for the inverse

  explicit Radix2Plan(std::size_t size) : n(size) {
    bitrev.resize(n);
    std::size_t log2n = 0;
    while ((std::size_t{1} << log2n) < n) ++log2n;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t r = 0;
      for (std::size_t b = 0; b < log2n; ++b) {
        r |= ((i >> b) & 1u) << (log2n - 1 - b);
      }
      bitrev[i] = r;
    }
    cvec twiddle(n / 2);  // e^{-j2πk/n}, k in [0, n/2)
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double a = -kTwoPi * static_cast<double>(k) /
                       static_cast<double>(n);
      twiddle[k] = {std::cos(a), std::sin(a)};
    }
    // Stage with half butterflies starts at offset half - 1 (the halves
    // of all earlier stages sum to 1 + 2 + ... + half/2 = half - 1) and
    // holds twiddle[k * step], step = n / (2*half).
    stage_tw.resize(n >= 2 ? n - 1 : 0);
    stage_tw_inv.resize(stage_tw.size());
    for (std::size_t half = 1; half < n; half <<= 1) {
      const std::size_t step = n / (2 * half);
      for (std::size_t k = 0; k < half; ++k) {
        stage_tw[half - 1 + k] = twiddle[k * step];
        stage_tw_inv[half - 1 + k] = std::conj(twiddle[k * step]);
      }
    }
  }

  void execute(std::span<cplx> data, bool inverse,
               double scale = 1.0) const {
    if (n < 2) {
      if (scale != 1.0) {
        for (cplx& v : data) v *= scale;
      }
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = bitrev[i];
      if (i < j) std::swap(data[i], data[j]);
    }
    const cplx* const tw = (inverse ? stage_tw_inv : stage_tw).data();
    cplx* const d = data.data();
    const simd::Kernels& kr = simd::kernels();
    for (std::size_t len = 2; len < n; len <<= 1) {
      const std::size_t half = len / 2;
      kr.fft_stage(d, tw + (half - 1), n, len);
    }
    // Final stage (len == n, one block): the kernel folds the output
    // scale into the butterfly writes -- bit-identical to a separate
    // post-multiply sweep, just without the extra pass.
    const std::size_t half = n / 2;
    kr.fft_last_stage(d, tw + (half - 1), half, scale);
  }
};

// Bluestein expresses an N-point DFT as a convolution of length >= 2N-1,
// evaluated with a power-of-two FFT. The chirp and the transformed kernel
// are precomputed per direction; the m-point convolution scratch is a
// reusable plan member so execution never allocates.
struct BluesteinPlan {
  std::size_t n = 0;
  std::size_t m = 0;  // convolution FFT size (power of two)
  Radix2Plan conv;
  cvec chirp_fwd;        // e^{-jπk²/n}
  cvec kernel_fft_fwd;   // FFT of conjugate chirp, forward direction
  cvec kernel_fft_inv;   // same for the inverse direction
  mutable cvec work;     // m-point convolution scratch

  explicit BluesteinPlan(std::size_t size)
      : n(size), m(next_pow2(2 * size - 1)), conv(m) {
    chirp_fwd.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      // k² mod 2n keeps the argument small for large N without changing
      // the chirp value (e^{-jπ(k²+2n·q)/n} == e^{-jπk²/n}).
      const std::size_t k2 = (k * k) % (2 * n);
      const double a = -kPi * static_cast<double>(k2) / static_cast<double>(n);
      chirp_fwd[k] = {std::cos(a), std::sin(a)};
    }
    kernel_fft_fwd = make_kernel(false);
    kernel_fft_inv = make_kernel(true);
    work.resize(m);
  }

  cvec make_kernel(bool inverse) const {
    cvec kern(m, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
      const cplx c = inverse ? chirp_fwd[k] : std::conj(chirp_fwd[k]);
      kern[k] = c;
      if (k != 0) kern[m - k] = c;
    }
    conv.execute(kern, /*inverse=*/false);
    return kern;
  }

  // `out` may alias `in`: the input is consumed before anything is
  // written back.
  void execute(std::span<const cplx> in, std::span<cplx> out, bool inverse,
               double scale = 1.0) const {
    for (std::size_t k = 0; k < n; ++k) {
      const cplx c = inverse ? std::conj(chirp_fwd[k]) : chirp_fwd[k];
      work[k] = in[k] * c;
    }
    std::fill(work.begin() + static_cast<std::ptrdiff_t>(n), work.end(),
              cplx{0.0, 0.0});
    conv.execute(work, /*inverse=*/false);
    const cvec& kern = inverse ? kernel_fft_inv : kernel_fft_fwd;
    simd::kernels().cvec_mul(work.data(), kern.data(), work.data(), m);
    conv.execute(work, /*inverse=*/true);
    const double s = scale / static_cast<double>(m);
    for (std::size_t k = 0; k < n; ++k) {
      const cplx c = inverse ? std::conj(chirp_fwd[k]) : chirp_fwd[k];
      out[k] = work[k] * c * s;
    }
  }
};

}  // namespace

struct Fft::Impl {
  std::size_t n = 0;
  std::unique_ptr<Radix2Plan> radix2;
  std::unique_ptr<BluesteinPlan> bluestein;

  // Hermitian-inverse fast path (even n only): one n/2-point complex
  // plan plus the pack twiddles e^{+j2πk/n}. Built lazily on first use
  // so plans that never emit real signals pay nothing.
  std::once_flag herm_once;
  std::unique_ptr<Fft> herm_half;
  cvec herm_twiddle;
  cvec herm_work;
};

Fft::Fft(std::size_t n) : impl_(std::make_unique<Impl>()) {
  OFDM_REQUIRE(n >= 1, "Fft: size must be >= 1");
  impl_->n = n;
  if (is_pow2(n)) {
    impl_->radix2 = std::make_unique<Radix2Plan>(n);
  } else {
    impl_->bluestein = std::make_unique<BluesteinPlan>(n);
  }
}

Fft::~Fft() = default;
Fft::Fft(Fft&&) noexcept = default;
Fft& Fft::operator=(Fft&&) noexcept = default;

std::size_t Fft::size() const { return impl_->n; }
bool Fft::is_radix2() const { return impl_->radix2 != nullptr; }

void Fft::forward(std::span<const cplx> in, std::span<cplx> out) const {
  OFDM_REQUIRE_DIM(in.size() == impl_->n && out.size() == impl_->n,
                   "Fft::forward: buffer size mismatch");
  if (impl_->radix2) {
    if (out.data() != in.data()) {
      std::copy(in.begin(), in.end(), out.begin());
    }
    impl_->radix2->execute(out, /*inverse=*/false);
  } else {
    impl_->bluestein->execute(in, out, /*inverse=*/false);
  }
}

void Fft::inverse(std::span<const cplx> in, std::span<cplx> out,
                  double scale) const {
  OFDM_REQUIRE_DIM(in.size() == impl_->n && out.size() == impl_->n,
                   "Fft::inverse: buffer size mismatch");
  const double s = scale / static_cast<double>(impl_->n);
  if (impl_->radix2) {
    if (out.data() != in.data()) {
      std::copy(in.begin(), in.end(), out.begin());
    }
    impl_->radix2->execute(out, /*inverse=*/true, s);
  } else {
    impl_->bluestein->execute(in, out, /*inverse=*/true, s);
  }
}

void Fft::inverse_hermitian(std::span<const cplx> in, std::span<cplx> out,
                            double scale) const {
  const std::size_t n = impl_->n;
  OFDM_REQUIRE_DIM(in.size() == n && out.size() == n,
                   "Fft::inverse_hermitian: buffer size mismatch");
  if (n < 2 || n % 2 != 0) {
    inverse(in, out, scale);
    return;
  }
  const std::size_t m = n / 2;
  std::call_once(impl_->herm_once, [this, n, m] {
    impl_->herm_half = std::make_unique<Fft>(m);
    impl_->herm_twiddle.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
      const double a = kTwoPi * static_cast<double>(k) /
                       static_cast<double>(n);
      impl_->herm_twiddle[k] = {std::cos(a), std::sin(a)};
    }
    impl_->herm_work.resize(m);
  });

  // Pack the Hermitian spectrum into an m-point complex spectrum whose
  // IFFT z satisfies z[i] = x[2i] + j x[2i+1] for the real output x:
  //   W[k] = (X[k] + X[k+m]) + j e^{+j2πk/n} (X[k] - X[k+m]).
  cvec& w = impl_->herm_work;
  for (std::size_t k = 0; k < m; ++k) {
    const cplx e = in[k] + in[k + m];
    const cplx o = (in[k] - in[k + m]) * impl_->herm_twiddle[k];
    w[k] = {e.real() - o.imag(), e.imag() + o.real()};
  }
  // z = IFFT_m(W) / 2 (the 1/n of the full transform is 1/(2m)).
  impl_->herm_half->inverse(w, w, 0.5 * scale);
  for (std::size_t i = 0; i < m; ++i) {
    out[2 * i] = {w[i].real(), 0.0};
    out[2 * i + 1] = {w[i].imag(), 0.0};
  }
}

cvec Fft::forward(std::span<const cplx> in) const {
  cvec out(size());
  forward(in, out);
  return out;
}

cvec Fft::inverse(std::span<const cplx> in) const {
  cvec out(size());
  inverse(in, out);
  return out;
}

cvec reference_dft(std::span<const cplx> x, bool inverse) {
  const std::size_t n = x.size();
  cvec out(n, cplx{0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t m = 0; m < n; ++m) {
      const double a = sign * kTwoPi * static_cast<double>(k * m % n) /
                       static_cast<double>(n);
      acc += x[m] * cplx{std::cos(a), std::sin(a)};
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

cvec fftshift(std::span<const cplx> x) {
  const std::size_t n = x.size();
  cvec out(n);
  const std::size_t half = (n + 1) / 2;  // ceil: DC lands in the middle
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(half), x.end(),
            out.begin());
  std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(half),
            out.begin() + static_cast<std::ptrdiff_t>(n - half));
  return out;
}

cvec ifftshift(std::span<const cplx> x) {
  const std::size_t n = x.size();
  cvec out(n);
  // Rotate left by floor(n/2): the exact inverse of fftshift's
  // rotate-left-by-ceil(n/2).
  const std::size_t half = n / 2;
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(half), x.end(),
            out.begin());
  std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(half),
            out.begin() + static_cast<std::ptrdiff_t>(n - half));
  return out;
}

}  // namespace ofdm::dsp
