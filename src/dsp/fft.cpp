#include "dsp/fft.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "dsp/simd/dispatch.hpp"

namespace ofdm::dsp {

namespace {

// ---------------------------------------------------------------------------
// Engine selection (OFDM_FFT environment variable, force hook)

std::atomic<int> g_engine{-1};

FftEngine resolve_engine() {
  const char* env = std::getenv("OFDM_FFT");
  FftEngine engine = FftEngine::kSplitRadix;
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    if (std::strcmp(env, "radix2") == 0) {
      engine = FftEngine::kRadix2;
    } else if (std::strcmp(env, "splitradix") == 0 ||
               std::strcmp(env, "split-radix") == 0) {
      engine = FftEngine::kSplitRadix;
    } else {
      OFDM_REQUIRE(false, std::string("OFDM_FFT: unknown engine '") + env +
                              "' (want radix2|splitradix|auto)");
    }
  }
  // First resolver wins; a concurrent fft_force_engine() may already
  // have installed a choice, in which case keep it.
  int expected = -1;
  g_engine.compare_exchange_strong(expected,
                                   static_cast<int>(engine),
                                   std::memory_order_acq_rel);
  return static_cast<FftEngine>(g_engine.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------------
// Immutable table sets (shared across plans via the process-wide cache)

/// Power-of-two butterfly tables. Two layouts behind one type:
///
///  * split-radix (the default for n >= 8): `perm` is the mixed
///    digit-reversal gather permutation of the recursive
///    [evens | odd1 | odd3] layout, `quads`/`pairs` list the output
///    offsets of the trivial-twiddle base units the gather pass fuses
///    in, and `levels` holds the combine schedule in ascending block
///    size (8 ... n, the last entry being the single full-size block).
///    Twiddles are two contiguous planes per level (all W^j, then all
///    W^{3j}) so the SIMD combine loops load them sequentially.
///  * legacy radix-2 (n < 8, or OFDM_FFT=radix2): the PR 6 bit-reversal
///    + stage-major twiddle layout, kept as the A/B fallback.
struct PowTables {
  std::size_t n = 0;
  bool split_radix = false;

  // split-radix
  struct Level {
    std::size_t n4 = 0;      // block size / 4
    std::size_t tw_off = 0;  // offset of this level's twiddle planes
    std::vector<std::uint32_t> offsets;
  };
  std::vector<std::uint32_t> perm;
  std::vector<std::uint32_t> quads;
  std::vector<std::uint32_t> pairs;
  cvec sr_tw;      // per-level [W^j | W^{3j}] planes, W = e^{-2πi/size}
  cvec sr_tw_inv;  // conjugate table for the inverse
  std::vector<Level> levels;

  // legacy radix-2
  std::vector<std::size_t> bitrev;
  cvec stage_tw;
  cvec stage_tw_inv;
};

PowTables build_radix2(std::size_t n) {
  PowTables t;
  t.n = n;
  t.split_radix = false;
  t.bitrev.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b) {
      r |= ((i >> b) & 1u) << (log2n - 1 - b);
    }
    t.bitrev[i] = r;
  }
  cvec twiddle(n / 2);  // e^{-j2πk/n}, k in [0, n/2)
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double a =
        -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddle[k] = {std::cos(a), std::sin(a)};
  }
  // Stage with half butterflies starts at offset half - 1 (the halves
  // of all earlier stages sum to 1 + 2 + ... + half/2 = half - 1) and
  // holds twiddle[k * step], step = n / (2*half).
  t.stage_tw.resize(n >= 2 ? n - 1 : 0);
  t.stage_tw_inv.resize(t.stage_tw.size());
  for (std::size_t half = 1; half < n; half <<= 1) {
    const std::size_t step = n / (2 * half);
    for (std::size_t k = 0; k < half; ++k) {
      t.stage_tw[half - 1 + k] = twiddle[k * step];
      t.stage_tw_inv[half - 1 + k] = std::conj(twiddle[k * step]);
    }
  }
  return t;
}

PowTables build_split_radix(std::size_t n) {
  PowTables t;
  t.n = n;
  t.split_radix = true;
  t.perm.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;

  // Recursive split-radix layout: a length-len sub-transform over the
  // decimated signal x[in_base + stride*i] lands at [out_base,
  // out_base+len) as [evens | odd1 | odd3]; every non-base length
  // contributes one combine job to its level. Base units (len 4 / 2)
  // have only trivial twiddles and are fused into the gather pass.
  std::vector<std::vector<std::uint32_t>> offs_by_log(log2n + 1);
  auto fill = [&](auto&& self, std::size_t out_base, std::size_t len,
                  std::size_t lg, std::size_t stride,
                  std::size_t in_base) -> void {
    if (len == 2) {
      t.perm[out_base] = static_cast<std::uint32_t>(in_base);
      t.perm[out_base + 1] = static_cast<std::uint32_t>(in_base + stride);
      t.pairs.push_back(static_cast<std::uint32_t>(out_base));
      return;
    }
    if (len == 4) {
      // Gathered unit order (x0, x2, x1, x3) of the sub-signal: the
      // 4-point DFT unit butterflies its even pair first.
      t.perm[out_base] = static_cast<std::uint32_t>(in_base);
      t.perm[out_base + 1] =
          static_cast<std::uint32_t>(in_base + 2 * stride);
      t.perm[out_base + 2] = static_cast<std::uint32_t>(in_base + stride);
      t.perm[out_base + 3] =
          static_cast<std::uint32_t>(in_base + 3 * stride);
      t.quads.push_back(static_cast<std::uint32_t>(out_base));
      return;
    }
    self(self, out_base, len / 2, lg - 1, 2 * stride, in_base);
    self(self, out_base + len / 2, len / 4, lg - 2, 4 * stride,
         in_base + stride);
    self(self, out_base + 3 * len / 4, len / 4, lg - 2, 4 * stride,
         in_base + 3 * stride);
    offs_by_log[lg].push_back(static_cast<std::uint32_t>(out_base));
  };
  fill(fill, 0, n, log2n, 1, 0);

  // Combine levels in ascending block size; twiddle planes appended in
  // the same order so each level owns one contiguous slice.
  std::size_t tw_off = 0;
  for (std::size_t lg = 3; lg <= log2n; ++lg) {
    if (offs_by_log[lg].empty()) continue;
    const std::size_t size = std::size_t{1} << lg;
    const std::size_t n4 = size / 4;
    PowTables::Level lvl;
    lvl.n4 = n4;
    lvl.tw_off = tw_off;
    lvl.offsets = std::move(offs_by_log[lg]);
    t.levels.push_back(std::move(lvl));
    t.sr_tw.resize(tw_off + 2 * n4);
    t.sr_tw_inv.resize(tw_off + 2 * n4);
    for (std::size_t j = 0; j < n4; ++j) {
      const double a1 =
          -kTwoPi * static_cast<double>(j) / static_cast<double>(size);
      const double a3 = -kTwoPi * static_cast<double>((3 * j) % size) /
                        static_cast<double>(size);
      const cplx w1{std::cos(a1), std::sin(a1)};
      const cplx w3{std::cos(a3), std::sin(a3)};
      t.sr_tw[tw_off + j] = w1;
      t.sr_tw[tw_off + n4 + j] = w3;
      t.sr_tw_inv[tw_off + j] = std::conj(w1);
      t.sr_tw_inv[tw_off + n4 + j] = std::conj(w3);
    }
    tw_off += 2 * n4;
  }
  return t;
}

/// Run the power-of-two transform. The split-radix gather pass is
/// out-of-place by construction, so an in-place request (in == out)
/// must supply `scratch` (n complexes): the gather and mid-level
/// combines run in the scratch buffer and the final combine level
/// writes back to `out` — no extra copy pass anywhere. The legacy
/// radix-2 path copies and swaps in place, exactly as before this
/// engine existed.
void execute_pow(const PowTables& t, const cplx* in, cplx* out,
                 bool inverse, double scale, cplx* scratch = nullptr) {
  const simd::Kernels& kr = simd::kernels();
  if (t.split_radix) {
    cplx* mid = (in == out) ? scratch : out;
    const cplx* tw = (inverse ? t.sr_tw_inv : t.sr_tw).data();
    kr.fft_sr_gather(in, mid, t.perm.data(), t.quads.data(),
                     t.quads.size(), t.pairs.data(), t.pairs.size(),
                     inverse);
    const std::size_t n_levels = t.levels.size();
    for (std::size_t l = 0; l + 1 < n_levels; ++l) {
      const PowTables::Level& lvl = t.levels[l];
      kr.fft_sr_combine(mid, tw + lvl.tw_off, lvl.offsets.data(),
                        lvl.offsets.size(), lvl.n4, inverse);
    }
    const PowTables::Level& last = t.levels.back();
    kr.fft_sr_last(mid, out, tw + last.tw_off, last.n4, inverse, scale);
    return;
  }
  const std::size_t n = t.n;
  if (out != in) std::copy(in, in + n, out);
  if (n < 2) {
    if (scale != 1.0) {
      for (std::size_t i = 0; i < n; ++i) out[i] *= scale;
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = t.bitrev[i];
    if (i < j) std::swap(out[i], out[j]);
  }
  const cplx* tw = (inverse ? t.stage_tw_inv : t.stage_tw).data();
  for (std::size_t len = 2; len < n; len <<= 1) {
    const std::size_t half = len / 2;
    kr.fft_stage(out, tw + (half - 1), n, len);
  }
  const std::size_t half = n / 2;
  kr.fft_last_stage(out, tw + (half - 1), half, scale);
}

/// Bluestein chirp-z tables: the chirp, the two transformed
/// convolution kernels, and a shared handle on the inner power-of-two
/// tables (which go through the same cache, so e.g. DRM's 1152-point
/// plan and a direct 4096-point plan share one 4096-point table set).
struct BluesteinTables {
  std::size_t n = 0;
  std::size_t m = 0;  // convolution FFT size (power of two)
  std::shared_ptr<const PowTables> conv;
  cvec chirp_fwd;       // e^{-jπk²/n}
  cvec kernel_fft_fwd;  // FFT of conjugate chirp, forward direction
  cvec kernel_fft_inv;  // same for the inverse direction
};

cvec make_bluestein_kernel(const BluesteinTables& t, bool inverse) {
  cvec kern(t.m, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < t.n; ++k) {
    const cplx c = inverse ? t.chirp_fwd[k] : std::conj(t.chirp_fwd[k]);
    kern[k] = c;
    if (k != 0) kern[t.m - k] = c;
  }
  cvec out(t.m);
  execute_pow(*t.conv, kern.data(), out.data(), /*inverse=*/false, 1.0);
  return out;
}

/// `out` may alias `in`: the input is consumed before anything is
/// written back. `work`/`work2` are the plan's m-point scratch buffers
/// (two of them so the out-of-place split-radix convolution transforms
/// never need an extra copy pass).
void execute_bluestein(const BluesteinTables& t, std::span<const cplx> in,
                       std::span<cplx> out, bool inverse, double scale,
                       cvec& work, cvec& work2) {
  const std::size_t n = t.n;
  const std::size_t m = t.m;
  for (std::size_t k = 0; k < n; ++k) {
    const cplx c = inverse ? std::conj(t.chirp_fwd[k]) : t.chirp_fwd[k];
    work[k] = in[k] * c;
  }
  std::fill(work.begin() + static_cast<std::ptrdiff_t>(n), work.end(),
            cplx{0.0, 0.0});
  execute_pow(*t.conv, work.data(), work2.data(), /*inverse=*/false, 1.0);
  const cvec& kern = inverse ? t.kernel_fft_inv : t.kernel_fft_fwd;
  simd::kernels().cvec_mul(work2.data(), kern.data(), work2.data(), m);
  execute_pow(*t.conv, work2.data(), work.data(), /*inverse=*/true, 1.0);
  const double s = scale / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    const cplx c = inverse ? std::conj(t.chirp_fwd[k]) : t.chirp_fwd[k];
    out[k] = work[k] * c * s;
  }
}

/// Pack/unpack twiddle planes for the half-size plan kinds (even n):
/// pack_tw feeds inverse_hermitian, unpack_tw feeds forward_real.
struct HalfTables {
  cvec pack_tw;    // e^{+j2πk/n}, k in [0, n/2)
  cvec unpack_tw;  // e^{-j2πk/n}
};

HalfTables build_half(std::size_t n) {
  const std::size_t m = n / 2;
  HalfTables t;
  t.pack_tw.resize(m);
  t.unpack_tw.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double a =
        kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    t.pack_tw[k] = {std::cos(a), std::sin(a)};
    t.unpack_tw[k] = {std::cos(-a), std::sin(-a)};
  }
  return t;
}

// ---------------------------------------------------------------------------
// Process-wide plan-table cache
//
// Keyed by (size, kind, engine). Values are shared_ptr to immutable
// table sets: plans hold shared ownership, so clearing the cache (or
// two threads racing on a build) can never invalidate a live plan.
// Builds run outside the lock — table construction may itself acquire
// (Bluestein's inner transform) and must not hold up other sizes; a
// lost insertion race just shares the winner's tables.

enum class TableKind : std::uint64_t {
  kPow = 0,
  kBluestein = 1,
  kHalf = 2,
};

struct CacheState {
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<const void>> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

CacheState& cache() {
  static CacheState* s = new CacheState;  // leaked: outlives all users
  return *s;
}

std::uint64_t cache_key(std::size_t n, TableKind kind, FftEngine engine) {
  return (static_cast<std::uint64_t>(n) << 4) |
         (static_cast<std::uint64_t>(kind) << 1) |
         static_cast<std::uint64_t>(engine == FftEngine::kSplitRadix);
}

template <typename T, typename Build>
std::shared_ptr<const T> acquire(std::uint64_t key, Build&& build) {
  CacheState& c = cache();
  {
    std::scoped_lock lk(c.mu);
    auto it = c.map.find(key);
    if (it != c.map.end()) {
      ++c.hits;
      return std::static_pointer_cast<const T>(it->second);
    }
  }
  std::shared_ptr<const T> built = build();
  std::scoped_lock lk(c.mu);
  auto [it, inserted] = c.map.emplace(key, built);
  if (inserted) {
    ++c.misses;
    return built;
  }
  ++c.hits;
  return std::static_pointer_cast<const T>(it->second);
}

std::shared_ptr<const PowTables> acquire_pow(std::size_t n,
                                             FftEngine engine) {
  // Sizes below 8 have no non-trivial split-radix level; they always
  // run the (trivial) radix-2 path, under one cache entry.
  if (n < 8) engine = FftEngine::kRadix2;
  return acquire<PowTables>(
      cache_key(n, TableKind::kPow, engine), [n, engine] {
        return std::make_shared<const PowTables>(
            engine == FftEngine::kSplitRadix ? build_split_radix(n)
                                             : build_radix2(n));
      });
}

std::shared_ptr<const BluesteinTables> acquire_bluestein(
    std::size_t n, FftEngine engine) {
  return acquire<BluesteinTables>(
      cache_key(n, TableKind::kBluestein, engine), [n, engine] {
        auto t = std::make_shared<BluesteinTables>();
        t->n = n;
        t->m = next_pow2(2 * n - 1);
        t->conv = acquire_pow(t->m, engine);
        t->chirp_fwd.resize(n);
        for (std::size_t k = 0; k < n; ++k) {
          // k² mod 2n keeps the argument small for large N without
          // changing the chirp (e^{-jπ(k²+2n·q)/n} == e^{-jπk²/n}).
          const std::size_t k2 = (k * k) % (2 * n);
          const double a =
              -kPi * static_cast<double>(k2) / static_cast<double>(n);
          t->chirp_fwd[k] = {std::cos(a), std::sin(a)};
        }
        t->kernel_fft_fwd = make_bluestein_kernel(*t, false);
        t->kernel_fft_inv = make_bluestein_kernel(*t, true);
        return std::shared_ptr<const BluesteinTables>(std::move(t));
      });
}

std::shared_ptr<const HalfTables> acquire_half(std::size_t n) {
  return acquire<HalfTables>(
      cache_key(n, TableKind::kHalf, FftEngine::kRadix2), [n] {
        return std::make_shared<const HalfTables>(build_half(n));
      });
}

}  // namespace

// ---------------------------------------------------------------------------
// Public engine / cache hooks

FftEngine fft_engine() {
  const int v = g_engine.load(std::memory_order_acquire);
  if (v < 0) return resolve_engine();
  return static_cast<FftEngine>(v);
}

FftEngine fft_force_engine(FftEngine engine) {
  g_engine.store(static_cast<int>(engine), std::memory_order_release);
  return engine;
}

const char* fft_engine_name(FftEngine engine) {
  return engine == FftEngine::kSplitRadix ? "splitradix" : "radix2";
}

FftCacheStats fft_plan_cache_stats() {
  CacheState& c = cache();
  std::scoped_lock lk(c.mu);
  return {c.hits, c.misses, c.map.size()};
}

void fft_plan_cache_clear() {
  CacheState& c = cache();
  std::scoped_lock lk(c.mu);
  c.map.clear();
  c.hits = 0;
  c.misses = 0;
}

// ---------------------------------------------------------------------------
// Fft plans

struct Fft::Impl {
  std::size_t n = 0;
  std::shared_ptr<const PowTables> pow;
  std::shared_ptr<const BluesteinTables> blu;
  // Mutable scratch is plan-private (the shared tables are immutable),
  // preserving the one-thread-per-plan execution contract. For
  // split-radix plans `work` stages in-place requests through the
  // out-of-place gather; for Bluestein, work/work2 are the two m-point
  // convolution buffers.
  mutable cvec work;
  mutable cvec work2;

  // Half-size plan kinds (even n): one n/2-point plan plus the shared
  // pack/unpack twiddle planes. Built on first use so plans that never
  // touch real signals pay nothing.
  mutable std::once_flag half_once;
  mutable std::unique_ptr<Fft> half;
  mutable std::shared_ptr<const HalfTables> half_tw;
  mutable cvec half_work;

  void ensure_half() const {
    std::call_once(half_once, [this] {
      half = std::make_unique<Fft>(n / 2);
      half_tw = acquire_half(n);
      half_work.resize(n / 2);
    });
  }

  /// Shared entry for the pow2 paths: in-place split-radix requests
  /// hand the plan's scratch buffer to the executor, which runs the
  /// early levels there and finishes into `out`.
  void run_pow(std::span<const cplx> in, std::span<cplx> out,
               bool inverse, double scale) const {
    execute_pow(*pow, in.data(), out.data(), inverse, scale, work.data());
  }
};

Fft::Fft(std::size_t n) : impl_(std::make_unique<Impl>()) {
  OFDM_REQUIRE(n >= 1, "Fft: size must be >= 1");
  impl_->n = n;
  if (is_pow2(n)) {
    impl_->pow = acquire_pow(n, fft_engine());
    if (impl_->pow->split_radix) impl_->work.resize(n);
  } else {
    impl_->blu = acquire_bluestein(n, fft_engine());
    impl_->work.resize(impl_->blu->m);
    impl_->work2.resize(impl_->blu->m);
  }
}

Fft::~Fft() = default;
Fft::Fft(Fft&&) noexcept = default;
Fft& Fft::operator=(Fft&&) noexcept = default;

std::size_t Fft::size() const { return impl_->n; }
bool Fft::is_radix2() const { return impl_->pow != nullptr; }

void Fft::forward(std::span<const cplx> in, std::span<cplx> out) const {
  OFDM_REQUIRE_DIM(in.size() == impl_->n && out.size() == impl_->n,
                   "Fft::forward: buffer size mismatch");
  if (impl_->pow) {
    impl_->run_pow(in, out, /*inverse=*/false, 1.0);
  } else {
    execute_bluestein(*impl_->blu, in, out, /*inverse=*/false, 1.0,
                      impl_->work, impl_->work2);
  }
}

void Fft::inverse(std::span<const cplx> in, std::span<cplx> out,
                  double scale) const {
  OFDM_REQUIRE_DIM(in.size() == impl_->n && out.size() == impl_->n,
                   "Fft::inverse: buffer size mismatch");
  const double s = scale / static_cast<double>(impl_->n);
  if (impl_->pow) {
    impl_->run_pow(in, out, /*inverse=*/true, s);
  } else {
    execute_bluestein(*impl_->blu, in, out, /*inverse=*/true, s,
                      impl_->work, impl_->work2);
  }
}

void Fft::forward_real(std::span<const cplx> in,
                       std::span<cplx> out) const {
  const std::size_t n = impl_->n;
  OFDM_REQUIRE_DIM(in.size() == n && out.size() == n,
                   "Fft::forward_real: buffer size mismatch");
  if (n < 2 || n % 2 != 0) {
    // Odd sizes: general path over the real parts (imag discarded, as
    // documented). Elementwise copy first keeps in-place calls safe.
    for (std::size_t i = 0; i < n; ++i) out[i] = {in[i].real(), 0.0};
    forward(out, out);
    return;
  }
  impl_->ensure_half();
  const std::size_t m = n / 2;
  // Pack adjacent real samples into one complex signal, transform at
  // half size, then split the packed spectrum back apart:
  //   Z = FFT_m(x[2i] + j x[2i+1])
  //   E[k] = (Z[k] + conj(Z[m-k]))/2        (spectrum of the evens)
  //   O[k] = (Z[k] - conj(Z[m-k]))/(2j)     (spectrum of the odds)
  //   X[k] = E[k] + W^k O[k],  X[k+m] = E[k] - W^k O[k],  W = e^{-j2π/n}.
  cvec& z = impl_->half_work;
  for (std::size_t i = 0; i < m; ++i) {
    z[i] = {in[2 * i].real(), in[2 * i + 1].real()};
  }
  impl_->half->forward(z, z);
  const cvec& w = impl_->half_tw->unpack_tw;
  out[0] = {z[0].real() + z[0].imag(), 0.0};
  out[m] = {z[0].real() - z[0].imag(), 0.0};
  for (std::size_t k = 1; k < m; ++k) {
    const cplx zk = z[k];
    const cplx zc = std::conj(z[m - k]);
    const cplx e = 0.5 * (zk + zc);
    const cplx d = zk - zc;
    const cplx o{0.5 * d.imag(), -0.5 * d.real()};  // d / (2j)
    const cplx tvx = o * w[k];
    out[k] = e + tvx;
    out[k + m] = e - tvx;
  }
}

void Fft::inverse_hermitian(std::span<const cplx> in, std::span<cplx> out,
                            double scale) const {
  const std::size_t n = impl_->n;
  OFDM_REQUIRE_DIM(in.size() == n && out.size() == n,
                   "Fft::inverse_hermitian: buffer size mismatch");
  if (n < 2 || n % 2 != 0) {
    inverse(in, out, scale);
    return;
  }
  impl_->ensure_half();
  const std::size_t m = n / 2;
  // Pack the Hermitian spectrum into an m-point complex spectrum whose
  // IFFT z satisfies z[i] = x[2i] + j x[2i+1] for the real output x:
  //   W[k] = (X[k] + X[k+m]) + j e^{+j2πk/n} (X[k] - X[k+m]).
  cvec& w = impl_->half_work;
  const cvec& tw = impl_->half_tw->pack_tw;
  for (std::size_t k = 0; k < m; ++k) {
    const cplx e = in[k] + in[k + m];
    const cplx o = (in[k] - in[k + m]) * tw[k];
    w[k] = {e.real() - o.imag(), e.imag() + o.real()};
  }
  // z = IFFT_m(W) / 2 (the 1/n of the full transform is 1/(2m)).
  impl_->half->inverse(w, w, 0.5 * scale);
  for (std::size_t i = 0; i < m; ++i) {
    out[2 * i] = {w[i].real(), 0.0};
    out[2 * i + 1] = {w[i].imag(), 0.0};
  }
}

cvec Fft::forward(std::span<const cplx> in) const {
  cvec out(size());
  forward(in, out);
  return out;
}

cvec Fft::inverse(std::span<const cplx> in) const {
  cvec out(size());
  inverse(in, out);
  return out;
}

cvec reference_dft(std::span<const cplx> x, bool inverse) {
  const std::size_t n = x.size();
  cvec out(n, cplx{0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t m = 0; m < n; ++m) {
      const double a = sign * kTwoPi * static_cast<double>(k * m % n) /
                       static_cast<double>(n);
      acc += x[m] * cplx{std::cos(a), std::sin(a)};
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

cvec fftshift(std::span<const cplx> x) {
  const std::size_t n = x.size();
  cvec out(n);
  const std::size_t half = (n + 1) / 2;  // ceil: DC lands in the middle
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(half), x.end(),
            out.begin());
  std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(half),
            out.begin() + static_cast<std::ptrdiff_t>(n - half));
  return out;
}

cvec ifftshift(std::span<const cplx> x) {
  const std::size_t n = x.size();
  cvec out(n);
  // Rotate left by floor(n/2): the exact inverse of fftshift's
  // rotate-left-by-ceil(n/2).
  const std::size_t half = n / 2;
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(half), x.end(),
            out.begin());
  std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(half),
            out.begin() + static_cast<std::ptrdiff_t>(n - half));
  return out;
}

}  // namespace ofdm::dsp
