#include "dsp/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ofdm::dsp {

namespace {

// Iterative radix-2 DIT on data whose twiddles are precomputed for the
// forward direction; the inverse runs the same network with conjugated
// twiddles and applies 1/N outside.
struct Radix2Plan {
  std::size_t n = 0;
  std::vector<std::size_t> bitrev;   // bit-reversal permutation
  cvec twiddle;                      // e^{-j2πk/n}, k in [0, n/2)

  explicit Radix2Plan(std::size_t size) : n(size) {
    bitrev.resize(n);
    std::size_t log2n = 0;
    while ((std::size_t{1} << log2n) < n) ++log2n;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t r = 0;
      for (std::size_t b = 0; b < log2n; ++b) {
        r |= ((i >> b) & 1u) << (log2n - 1 - b);
      }
      bitrev[i] = r;
    }
    twiddle.resize(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double a = -kTwoPi * static_cast<double>(k) /
                       static_cast<double>(n);
      twiddle[k] = {std::cos(a), std::sin(a)};
    }
  }

  void execute(std::span<cplx> data, bool inverse) const {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = bitrev[i];
      if (i < j) std::swap(data[i], data[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len / 2;
      const std::size_t step = n / len;
      for (std::size_t base = 0; base < n; base += len) {
        for (std::size_t k = 0; k < half; ++k) {
          cplx w = twiddle[k * step];
          if (inverse) w = std::conj(w);
          const cplx u = data[base + k];
          const cplx t = data[base + k + half] * w;
          data[base + k] = u + t;
          data[base + k + half] = u - t;
        }
      }
    }
  }
};

// Bluestein expresses an N-point DFT as a convolution of length >= 2N-1,
// evaluated with a power-of-two FFT. The chirp and the transformed kernel
// are precomputed per direction.
struct BluesteinPlan {
  std::size_t n = 0;
  std::size_t m = 0;  // convolution FFT size (power of two)
  Radix2Plan conv;
  cvec chirp_fwd;        // e^{-jπk²/n}
  cvec kernel_fft_fwd;   // FFT of conjugate chirp, forward direction
  cvec kernel_fft_inv;   // same for the inverse direction

  explicit BluesteinPlan(std::size_t size)
      : n(size), m(next_pow2(2 * size - 1)), conv(m) {
    chirp_fwd.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      // k² mod 2n keeps the argument small for large N without changing
      // the chirp value (e^{-jπ(k²+2n·q)/n} == e^{-jπk²/n}).
      const std::size_t k2 = (k * k) % (2 * n);
      const double a = -kPi * static_cast<double>(k2) / static_cast<double>(n);
      chirp_fwd[k] = {std::cos(a), std::sin(a)};
    }
    kernel_fft_fwd = make_kernel(false);
    kernel_fft_inv = make_kernel(true);
  }

  cvec make_kernel(bool inverse) const {
    cvec kern(m, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
      const cplx c = inverse ? chirp_fwd[k] : std::conj(chirp_fwd[k]);
      kern[k] = c;
      if (k != 0) kern[m - k] = c;
    }
    conv.execute(kern, /*inverse=*/false);
    return kern;
  }

  void execute(std::span<const cplx> in, std::span<cplx> out,
               bool inverse) const {
    cvec a(m, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
      const cplx c = inverse ? std::conj(chirp_fwd[k]) : chirp_fwd[k];
      a[k] = in[k] * c;
    }
    conv.execute(a, /*inverse=*/false);
    const cvec& kern = inverse ? kernel_fft_inv : kernel_fft_fwd;
    for (std::size_t k = 0; k < m; ++k) a[k] *= kern[k];
    conv.execute(a, /*inverse=*/true);
    const double scale = 1.0 / static_cast<double>(m);
    for (std::size_t k = 0; k < n; ++k) {
      const cplx c = inverse ? std::conj(chirp_fwd[k]) : chirp_fwd[k];
      out[k] = a[k] * c * scale;
    }
  }
};

}  // namespace

struct Fft::Impl {
  std::size_t n = 0;
  std::unique_ptr<Radix2Plan> radix2;
  std::unique_ptr<BluesteinPlan> bluestein;
};

Fft::Fft(std::size_t n) : impl_(std::make_unique<Impl>()) {
  OFDM_REQUIRE(n >= 1, "Fft: size must be >= 1");
  impl_->n = n;
  if (is_pow2(n)) {
    impl_->radix2 = std::make_unique<Radix2Plan>(n);
  } else {
    impl_->bluestein = std::make_unique<BluesteinPlan>(n);
  }
}

Fft::~Fft() = default;
Fft::Fft(Fft&&) noexcept = default;
Fft& Fft::operator=(Fft&&) noexcept = default;

std::size_t Fft::size() const { return impl_->n; }
bool Fft::is_radix2() const { return impl_->radix2 != nullptr; }

void Fft::forward(std::span<const cplx> in, std::span<cplx> out) const {
  OFDM_REQUIRE_DIM(in.size() == impl_->n && out.size() == impl_->n,
                   "Fft::forward: buffer size mismatch");
  if (impl_->radix2) {
    if (out.data() != in.data()) {
      std::copy(in.begin(), in.end(), out.begin());
    }
    impl_->radix2->execute(out, /*inverse=*/false);
  } else {
    if (out.data() == in.data()) {
      cvec tmp(in.begin(), in.end());
      impl_->bluestein->execute(tmp, out, /*inverse=*/false);
    } else {
      impl_->bluestein->execute(in, out, /*inverse=*/false);
    }
  }
}

void Fft::inverse(std::span<const cplx> in, std::span<cplx> out) const {
  OFDM_REQUIRE_DIM(in.size() == impl_->n && out.size() == impl_->n,
                   "Fft::inverse: buffer size mismatch");
  if (impl_->radix2) {
    if (out.data() != in.data()) {
      std::copy(in.begin(), in.end(), out.begin());
    }
    impl_->radix2->execute(out, /*inverse=*/true);
  } else {
    if (out.data() == in.data()) {
      cvec tmp(in.begin(), in.end());
      impl_->bluestein->execute(tmp, out, /*inverse=*/true);
    } else {
      impl_->bluestein->execute(in, out, /*inverse=*/true);
    }
  }
  const double scale = 1.0 / static_cast<double>(impl_->n);
  for (cplx& v : out) v *= scale;
}

cvec Fft::forward(std::span<const cplx> in) const {
  cvec out(size());
  forward(in, out);
  return out;
}

cvec Fft::inverse(std::span<const cplx> in) const {
  cvec out(size());
  inverse(in, out);
  return out;
}

cvec reference_dft(std::span<const cplx> x, bool inverse) {
  const std::size_t n = x.size();
  cvec out(n, cplx{0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t m = 0; m < n; ++m) {
      const double a = sign * kTwoPi * static_cast<double>(k * m % n) /
                       static_cast<double>(n);
      acc += x[m] * cplx{std::cos(a), std::sin(a)};
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

cvec fftshift(std::span<const cplx> x) {
  const std::size_t n = x.size();
  cvec out(n);
  const std::size_t half = (n + 1) / 2;  // ceil: DC lands in the middle
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(half), x.end(),
            out.begin());
  std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(half),
            out.begin() + static_cast<std::ptrdiff_t>(n - half));
  return out;
}

cvec ifftshift(std::span<const cplx> x) {
  const std::size_t n = x.size();
  cvec out(n);
  // Rotate left by floor(n/2): the exact inverse of fftshift's
  // rotate-left-by-ceil(n/2).
  const std::size_t half = n / 2;
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(half), x.end(),
            out.begin());
  std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(half),
            out.begin() + static_cast<std::ptrdiff_t>(n - half));
  return out;
}

}  // namespace ofdm::dsp
