// Fast Fourier transform with two execution paths:
//
//  * power-of-two sizes  -> iterative radix-2 Cooley-Tukey with precomputed
//    twiddles (the common case: 64/256/512/.../8192-point OFDM symbols);
//  * any other size      -> Bluestein's chirp-z algorithm, needed because
//    the DRM robustness modes use non-power-of-two symbol lengths
//    (1152, 704, 448 samples at the 48 kHz master rate).
//
// Conventions: forward() computes X[k] = sum_n x[n] e^{-j2πkn/N} (no
// scaling); inverse() includes the 1/N factor so inverse(forward(x)) == x.
//
// Plans own reusable workspaces (Bluestein convolution scratch, the
// half-size plan behind the Hermitian fast path), so executing a transform
// performs no heap allocation in steady state. The flip side: a single
// plan must not be executed from two threads concurrently — give each
// worker its own plan (they are cheap relative to a burst).
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "common/types.hpp"

namespace ofdm::dsp {

/// A transform plan for a fixed size N. Construct once per symbol size and
/// reuse; execution is allocation-free after the first call of each kind.
class Fft {
 public:
  /// Build a plan for size n (n >= 1). Chooses radix-2 or Bluestein.
  explicit Fft(std::size_t n);
  ~Fft();

  Fft(Fft&&) noexcept;
  Fft& operator=(Fft&&) noexcept;
  Fft(const Fft&) = delete;
  Fft& operator=(const Fft&) = delete;

  std::size_t size() const;

  /// True if this plan runs the radix-2 path (power-of-two size).
  bool is_radix2() const;

  /// Forward DFT. in.size() == out.size() == size(). In-place allowed.
  void forward(std::span<const cplx> in, std::span<cplx> out) const;

  /// Inverse DFT with 1/N scaling, times an optional extra amplitude
  /// factor fused into the transform's own output pass (no separate
  /// sweep over the buffer). In-place allowed.
  void inverse(std::span<const cplx> in, std::span<cplx> out,
               double scale = 1.0) const;

  /// Inverse DFT of a Hermitian-symmetric spectrum (X[N-k] == conj(X[k]),
  /// real X[0] and X[N/2]) — the DMT/powerline real-output case. For even
  /// N this runs one N/2-point complex IFFT instead of an N-point one
  /// (~2x faster) and writes an exactly-real result (imaginary parts are
  /// 0.0 by construction). Odd N falls back to the general inverse. The
  /// input must actually be Hermitian; the fast path silently discards
  /// any non-Hermitian component. In-place allowed.
  void inverse_hermitian(std::span<const cplx> in, std::span<cplx> out,
                         double scale = 1.0) const;

  /// Convenience allocating overloads.
  cvec forward(std::span<const cplx> in) const;
  cvec inverse(std::span<const cplx> in) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// O(N^2) reference DFT used by the unit tests as ground truth.
cvec reference_dft(std::span<const cplx> x, bool inverse = false);

/// Swap the two halves of a spectrum so that DC ends up in the middle
/// (odd lengths put DC at index (N-1)/2 after the shift, matching the
/// usual fftshift definition).
cvec fftshift(std::span<const cplx> x);

/// Inverse of fftshift.
cvec ifftshift(std::span<const cplx> x);

}  // namespace ofdm::dsp
