// Plan-based fast Fourier transform engine.
//
// Execution paths:
//
//  * power-of-two sizes  -> split-radix DIT butterflies (2 complex
//    multiplies per 4 outputs) over the SIMD kernel table, with the
//    mixed digit-reversal permutation fused into a vectorized
//    first-stage gather pass (no scalar scatter loop). Sizes < 8 and
//    the OFDM_FFT=radix2 fallback run the legacy iterative radix-2
//    path instead.
//  * any other size      -> Bluestein's chirp-z algorithm, needed
//    because the DRM robustness modes use non-power-of-two symbol
//    lengths (1152, 704, 448 samples at the 48 kHz master rate). Its
//    inner power-of-two convolution FFT goes through the same engine.
//
// Plan kinds: the complex transform above, plus two first-class
// half-size kinds for the real-signal standards — forward_real()
// (real-input forward at N/2 cost) and inverse_hermitian()
// (Hermitian-input inverse at N/2 cost, the DMT TX path).
//
// Conventions: forward() computes X[k] = sum_n x[n] e^{-j2πkn/N} (no
// scaling); inverse() includes the 1/N factor so inverse(forward(x)) == x.
//
// The immutable tables behind a plan (twiddle planes, digit-reversal
// permutation, Bluestein chirp/kernels) live in a process-wide
// thread-safe cache keyed by (size, kind, engine): every Modulator,
// receiver, spectrum estimate, LinkRunner worker and Bluestein inner
// transform of the same size shares one table set instead of
// rebuilding it. Plans own only their mutable scratch, so executing a
// transform performs no heap allocation in steady state — but a single
// plan must still not be executed from two threads concurrently; give
// each worker its own (now table-sharing, so genuinely cheap) plan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "common/types.hpp"

namespace ofdm::dsp {

/// Power-of-two butterfly engine. kSplitRadix is the default; kRadix2
/// is the legacy fallback kept as an A/B lever (OFDM_FFT=radix2), the
/// same shape as the OFDM_SIMD=scalar tier lever. Golden-trace digests
/// are blessed for kSplitRadix.
enum class FftEngine {
  kRadix2,
  kSplitRadix,
};

/// The engine new plans use. First call resolves the OFDM_FFT
/// environment variable ("radix2", "splitradix", "auto"); later calls
/// are an atomic load. Unknown values throw ConfigError.
FftEngine fft_engine();

/// Override the engine decision (benches and the engine-equivalence
/// test use this to pit the two pow2 paths against each other).
/// Existing plans keep the engine they were built with.
FftEngine fft_force_engine(FftEngine engine);

/// "radix2" / "splitradix".
const char* fft_engine_name(FftEngine engine);

/// Observability hooks for the process-wide plan-table cache.
struct FftCacheStats {
  std::uint64_t hits = 0;    ///< acquisitions served from the cache
  std::uint64_t misses = 0;  ///< acquisitions that built fresh tables
  std::size_t entries = 0;   ///< table sets currently cached
};
FftCacheStats fft_plan_cache_stats();

/// Drop every cached table set (outstanding plans keep theirs alive
/// via shared ownership) and reset the hit/miss counters. Test hook.
void fft_plan_cache_clear();

/// A transform plan for a fixed size N. Construct once per symbol size
/// and reuse; execution is allocation-free after the first call of
/// each kind. Table construction is cached process-wide, so repeated
/// construction at the same size is cheap.
class Fft {
 public:
  /// Build a plan for size n. Throws ConfigError for n == 0.
  explicit Fft(std::size_t n);
  ~Fft();

  Fft(Fft&&) noexcept;
  Fft& operator=(Fft&&) noexcept;
  Fft(const Fft&) = delete;
  Fft& operator=(const Fft&) = delete;

  std::size_t size() const;

  /// True if this plan runs a power-of-two butterfly path (split-radix
  /// or radix-2) rather than Bluestein. Kept under its historical name.
  bool is_radix2() const;

  /// Forward DFT. in.size() == out.size() == size(). In-place allowed.
  void forward(std::span<const cplx> in, std::span<cplx> out) const;

  /// Forward DFT of a real signal carried in the real parts of `in`
  /// (imaginary parts are ignored). For even N this packs the signal
  /// into an N/2-point complex FFT (~2x faster) and writes the full
  /// Hermitian-symmetric N-bin spectrum; odd N falls back to the
  /// general forward path. In-place allowed.
  void forward_real(std::span<const cplx> in, std::span<cplx> out) const;

  /// Inverse DFT with 1/N scaling, times an optional extra amplitude
  /// factor fused into the transform's own output pass (no separate
  /// sweep over the buffer). In-place allowed.
  void inverse(std::span<const cplx> in, std::span<cplx> out,
               double scale = 1.0) const;

  /// Inverse DFT of a Hermitian-symmetric spectrum (X[N-k] == conj(X[k]),
  /// real X[0] and X[N/2]) — the DMT/powerline real-output case. For even
  /// N this runs one N/2-point complex IFFT instead of an N-point one
  /// (~2x faster) and writes an exactly-real result (imaginary parts are
  /// 0.0 by construction). Odd N falls back to the general inverse. The
  /// input must actually be Hermitian; the fast path silently discards
  /// any non-Hermitian component. In-place allowed.
  void inverse_hermitian(std::span<const cplx> in, std::span<cplx> out,
                         double scale = 1.0) const;

  /// Convenience allocating overloads.
  cvec forward(std::span<const cplx> in) const;
  cvec inverse(std::span<const cplx> in) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// O(N^2) reference DFT used by the unit tests as ground truth.
cvec reference_dft(std::span<const cplx> x, bool inverse = false);

/// Swap the two halves of a spectrum so that DC ends up in the middle
/// (odd lengths put DC at index (N-1)/2 after the shift, matching the
/// usual fftshift definition).
cvec fftshift(std::span<const cplx> x);

/// Inverse of fftshift.
cvec ifftshift(std::span<const cplx> x);

}  // namespace ofdm::dsp
