#include "dsp/resample.hpp"

#include "common/error.hpp"

namespace ofdm::dsp {

namespace {
rvec anti_alias_taps(std::size_t factor, std::size_t taps_per_phase,
                     double gain) {
  if (factor == 1) {
    return rvec{gain};
  }
  const std::size_t taps = taps_per_phase * factor;
  rvec h = design_lowpass(0.5 / static_cast<double>(factor), taps);
  for (double& v : h) v *= gain;
  return h;
}
}  // namespace

Interpolator::Interpolator(std::size_t factor, std::size_t taps_per_phase)
    : factor_(factor),
      filter_(anti_alias_taps(factor, taps_per_phase,
                              static_cast<double>(factor))) {
  OFDM_REQUIRE(factor >= 1, "Interpolator: factor must be >= 1");
}

cvec Interpolator::process(std::span<const cplx> in) {
  if (factor_ == 1) {
    return filter_.process(in);
  }
  cvec stuffed(in.size() * factor_, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < in.size(); ++i) {
    stuffed[i * factor_] = in[i];
  }
  return filter_.process(stuffed);
}

void Interpolator::reset() { filter_.reset(); }

Decimator::Decimator(std::size_t factor, std::size_t taps_per_phase)
    : factor_(factor),
      filter_(anti_alias_taps(factor, taps_per_phase, 1.0)) {
  OFDM_REQUIRE(factor >= 1, "Decimator: factor must be >= 1");
}

cvec Decimator::process(std::span<const cplx> in) {
  const cvec filtered = filter_.process(in);
  cvec out;
  out.reserve(filtered.size() / factor_ + 1);
  for (const cplx& v : filtered) {
    if (phase_ == 0) out.push_back(v);
    phase_ = (phase_ + 1) % factor_;
  }
  return out;
}

void Decimator::reset() {
  filter_.reset();
  phase_ = 0;
}

}  // namespace ofdm::dsp
