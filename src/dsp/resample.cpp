#include "dsp/resample.hpp"

#include "common/error.hpp"
#include "common/serial.hpp"

namespace ofdm::dsp {

namespace {
rvec anti_alias_taps(std::size_t factor, std::size_t taps_per_phase,
                     double gain) {
  if (factor == 1) {
    return rvec{gain};
  }
  const std::size_t taps = taps_per_phase * factor;
  rvec h = design_lowpass(0.5 / static_cast<double>(factor), taps);
  for (double& v : h) v *= gain;
  return h;
}
}  // namespace

Interpolator::Interpolator(std::size_t factor, std::size_t taps_per_phase)
    : factor_(factor),
      filter_(anti_alias_taps(factor, taps_per_phase,
                              static_cast<double>(factor))) {
  OFDM_REQUIRE(factor >= 1, "Interpolator: factor must be >= 1");
}

void Interpolator::process(std::span<const cplx> in, cvec& out) {
  if (factor_ == 1) {
    out.resize(in.size());
    filter_.process(in, out);
    return;
  }
  stuffed_.assign(in.size() * factor_, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < in.size(); ++i) {
    stuffed_[i * factor_] = in[i];
  }
  out.resize(stuffed_.size());
  filter_.process(stuffed_, out);
}

cvec Interpolator::process(std::span<const cplx> in) {
  cvec out;
  process(in, out);
  return out;
}

void Interpolator::reset() { filter_.reset(); }

void Interpolator::save_state(StateWriter& w) const {
  filter_.save_state(w);
}

void Interpolator::load_state(StateReader& r) { filter_.load_state(r); }

Decimator::Decimator(std::size_t factor, std::size_t taps_per_phase)
    : factor_(factor),
      filter_(anti_alias_taps(factor, taps_per_phase, 1.0)) {
  OFDM_REQUIRE(factor >= 1, "Decimator: factor must be >= 1");
}

void Decimator::process(std::span<const cplx> in, cvec& out) {
  filtered_.resize(in.size());
  filter_.process(in, filtered_);  // consumes `in` before out is touched
  out.clear();
  out.reserve(filtered_.size() / factor_ + 1);
  for (const cplx& v : filtered_) {
    if (phase_ == 0) out.push_back(v);
    phase_ = (phase_ + 1) % factor_;
  }
}

cvec Decimator::process(std::span<const cplx> in) {
  cvec out;
  process(in, out);
  return out;
}

void Decimator::reset() {
  filter_.reset();
  phase_ = 0;
}

void Decimator::save_state(StateWriter& w) const {
  filter_.save_state(w);
  w.u64(phase_);
}

void Decimator::load_state(StateReader& r) {
  filter_.load_state(r);
  phase_ = r.u64();
}

}  // namespace ofdm::dsp
