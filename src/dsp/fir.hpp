// FIR filtering: windowed-sinc design plus a streaming filter state.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace ofdm {
class StateWriter;
class StateReader;
}  // namespace ofdm

namespace ofdm::dsp {

/// Design a linear-phase lowpass by the windowed-sinc method.
/// `cutoff` is the normalized cutoff in cycles/sample (0 < cutoff < 0.5);
/// `taps` is the filter length (>= 1). Hamming window, unity DC gain.
rvec design_lowpass(double cutoff, std::size_t taps);

/// Streaming FIR filter with real taps acting on complex samples.
/// Keeps its own delay line so arbitrarily chunked input produces the same
/// output as one big call (required by the sample-streaming RF blocks).
class FirFilter {
 public:
  explicit FirFilter(rvec taps);

  std::size_t tap_count() const { return taps_.size(); }
  /// Group delay in samples for the linear-phase case: (taps-1)/2.
  double group_delay() const {
    return (static_cast<double>(taps_.size()) - 1.0) / 2.0;
  }

  /// Filter a chunk; output has the same length as the input.
  void process(std::span<const cplx> in, std::span<cplx> out);
  cvec process(std::span<const cplx> in);

  /// Clear the delay line.
  void reset();

  /// Checkpoint/restore of the delay line (taps are configuration, not
  /// state, and are not serialized).
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  rvec taps_;
  cvec history_;  // last `taps` inputs, chronological (oldest first)
  cvec window_;   // scratch: [taps-1 history | chunk]; grows once
};

/// One-shot convolution returning full length (x.size()+taps.size()-1).
cvec convolve(std::span<const cplx> x, std::span<const double> taps);

}  // namespace ofdm::dsp
