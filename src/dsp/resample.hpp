// Integer-factor sample-rate conversion. The RF simulator oversamples the
// baseband signal before the DAC/upconverter; the Interpolator implements
// zero-stuffing followed by an anti-imaging lowpass.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"
#include "dsp/fir.hpp"  // also forward-declares StateWriter/StateReader

namespace ofdm::dsp {

/// Upsample by an integer factor L: zero-stuff then lowpass at 1/(2L),
/// with gain L so the signal amplitude is preserved.
class Interpolator {
 public:
  /// `factor` >= 1; `taps_per_phase` controls filter quality (default 16
  /// taps for every output phase).
  explicit Interpolator(std::size_t factor, std::size_t taps_per_phase = 16);

  std::size_t factor() const { return factor_; }

  /// Produces factor()*in.size() samples into `out` (resized); `in`
  /// must not overlap `out`. Allocation-free after warm-up.
  void process(std::span<const cplx> in, cvec& out);
  cvec process(std::span<const cplx> in);

  void reset();

  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  std::size_t factor_;
  FirFilter filter_;
  cvec stuffed_;  // reusable zero-stuffing buffer
};

/// Downsample by an integer factor M: lowpass at 1/(2M) then keep every
/// M-th sample.
class Decimator {
 public:
  explicit Decimator(std::size_t factor, std::size_t taps_per_phase = 16);

  std::size_t factor() const { return factor_; }

  /// Produces floor((phase + in.size())/M) - floor(phase/M) samples,
  /// streaming-safe across chunk boundaries. The buffered form is
  /// allocation-free after warm-up; `out` may alias `in`.
  void process(std::span<const cplx> in, cvec& out);
  cvec process(std::span<const cplx> in);

  void reset();

  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  std::size_t factor_;
  std::size_t phase_ = 0;
  FirFilter filter_;
  cvec filtered_;  // reusable anti-alias output buffer
};

}  // namespace ofdm::dsp
