// SSE2 tier: one complex per 128-bit register, two independent
// accumulators in the FIR loops for ILP. Baseline x86-64 — always
// available, no CPUID gate needed.
//
// Bit-identity notes (versus the scalar tier):
//  - complex multiply uses the same two products per component; the
//    subtraction is emulated as x + (-y) via an XOR sign flip, which
//    IEEE-754 defines as exactly x - y;
//  - the imaginary component sums the same two products in swapped
//    operand order — FP addition is commutative, so bits match;
//  - FIR accumulation runs one output per lane in ascending-tap
//    (scalar delay-line) order; no cross-tap reassociation.
#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <cstddef>
#include <cstdint>

#include "dsp/simd/kernels.hpp"

namespace ofdm::simd {
namespace sse2 {

inline __m128d neg_lo_mask() {
  return _mm_castsi128_pd(
      _mm_set_epi64x(0, static_cast<long long>(0x8000000000000000ULL)));
}

/// [a.re*b.re - a.im*b.im, a.im*b.re + a.re*b.im]
inline __m128d cmul(__m128d a, __m128d b) {
  const __m128d b_re = _mm_shuffle_pd(b, b, 0x0);
  const __m128d b_im = _mm_shuffle_pd(b, b, 0x3);
  const __m128d a_swap = _mm_shuffle_pd(a, a, 0x1);
  const __m128d cross = _mm_xor_pd(_mm_mul_pd(a_swap, b_im),
                                   neg_lo_mask());
  return _mm_add_pd(_mm_mul_pd(a, b_re), cross);
}

inline __m128d load(const cplx* p) {
  return _mm_loadu_pd(reinterpret_cast<const double*>(p));
}
inline void store(cplx* p, __m128d v) {
  _mm_storeu_pd(reinterpret_cast<double*>(p), v);
}

void fft_stage(cplx* d, const cplx* tw, std::size_t n,
               std::size_t len) {
  const std::size_t half = len / 2;
  for (std::size_t base = 0; base < n; base += len) {
    cplx* lo = d + base;
    cplx* hi = lo + half;
    for (std::size_t k = 0; k < half; ++k) {
      const __m128d t = cmul(load(hi + k), load(tw + k));
      const __m128d u = load(lo + k);
      store(lo + k, _mm_add_pd(u, t));
      store(hi + k, _mm_sub_pd(u, t));
    }
  }
}

void fft_last_stage(cplx* d, const cplx* tw, std::size_t half,
                    double scale) {
  cplx* lo = d;
  cplx* hi = d + half;
  if (scale == 1.0) {
    for (std::size_t k = 0; k < half; ++k) {
      const __m128d t = cmul(load(hi + k), load(tw + k));
      const __m128d u = load(lo + k);
      store(lo + k, _mm_add_pd(u, t));
      store(hi + k, _mm_sub_pd(u, t));
    }
    return;
  }
  const __m128d s = _mm_set1_pd(scale);
  for (std::size_t k = 0; k < half; ++k) {
    const __m128d t = cmul(load(hi + k), load(tw + k));
    const __m128d u = load(lo + k);
    store(lo + k, _mm_mul_pd(_mm_add_pd(u, t), s));
    store(hi + k, _mm_mul_pd(_mm_sub_pd(u, t), s));
  }
}

inline __m128d neg_hi_mask() {
  return _mm_castsi128_pd(
      _mm_set_epi64x(static_cast<long long>(0x8000000000000000ULL), 0));
}

// The split-radix ∓j legs are a component swap (shuffle 0x1) plus an
// XOR sign flip with jmask — both exact, matching scalar rot90
// bit-for-bit. jmask negates the imaginary lane forward (-j) and the
// real lane inverse (+j).

void fft_sr_gather(const cplx* in, cplx* out, const std::uint32_t* perm,
                   const std::uint32_t* quads, std::size_t n_quads,
                   const std::uint32_t* pairs, std::size_t n_pairs,
                   bool inverse) {
  const __m128d jmask = inverse ? neg_lo_mask() : neg_hi_mask();
  for (std::size_t q = 0; q < n_quads; ++q) {
    const std::size_t p = quads[q];
    const __m128d g0 = load(in + perm[p]);
    const __m128d g1 = load(in + perm[p + 1]);
    const __m128d g2 = load(in + perm[p + 2]);
    const __m128d g3 = load(in + perm[p + 3]);
    const __m128d e0 = _mm_add_pd(g0, g1);
    const __m128d e1 = _mm_sub_pd(g0, g1);
    const __m128d ts = _mm_add_pd(g2, g3);
    const __m128d tm = _mm_sub_pd(g2, g3);
    const __m128d td = _mm_xor_pd(_mm_shuffle_pd(tm, tm, 0x1), jmask);
    store(out + p, _mm_add_pd(e0, ts));
    store(out + p + 2, _mm_sub_pd(e0, ts));
    store(out + p + 1, _mm_add_pd(e1, td));
    store(out + p + 3, _mm_sub_pd(e1, td));
  }
  for (std::size_t r = 0; r < n_pairs; ++r) {
    const std::size_t p = pairs[r];
    const __m128d g0 = load(in + perm[p]);
    const __m128d g1 = load(in + perm[p + 1]);
    store(out + p, _mm_add_pd(g0, g1));
    store(out + p + 1, _mm_sub_pd(g0, g1));
  }
}

void fft_sr_combine(cplx* d, const cplx* tw, const std::uint32_t* offs,
                    std::size_t n_offs, std::size_t n4, bool inverse) {
  const __m128d jmask = inverse ? neg_lo_mask() : neg_hi_mask();
  for (std::size_t b = 0; b < n_offs; ++b) {
    cplx* const u0 = d + offs[b];
    cplx* const u1 = u0 + n4;
    cplx* const z = u0 + 2 * n4;
    cplx* const zp = u0 + 3 * n4;
    for (std::size_t j = 0; j < n4; ++j) {
      const __m128d t1 = cmul(load(z + j), load(tw + j));
      const __m128d t3 = cmul(load(zp + j), load(tw + n4 + j));
      const __m128d ts = _mm_add_pd(t1, t3);
      const __m128d tm = _mm_sub_pd(t1, t3);
      const __m128d td = _mm_xor_pd(_mm_shuffle_pd(tm, tm, 0x1), jmask);
      const __m128d a = load(u0 + j);
      const __m128d c = load(u1 + j);
      store(u0 + j, _mm_add_pd(a, ts));
      store(z + j, _mm_sub_pd(a, ts));
      store(u1 + j, _mm_add_pd(c, td));
      store(zp + j, _mm_sub_pd(c, td));
    }
  }
}

void fft_sr_last(const cplx* src, cplx* dst, const cplx* tw,
                 std::size_t n4, bool inverse, double scale) {
  const __m128d jmask = inverse ? neg_lo_mask() : neg_hi_mask();
  const cplx* const u0 = src;
  const cplx* const u1 = src + n4;
  const cplx* const z = src + 2 * n4;
  const cplx* const zp = src + 3 * n4;
  if (scale == 1.0) {
    for (std::size_t j = 0; j < n4; ++j) {
      const __m128d t1 = cmul(load(z + j), load(tw + j));
      const __m128d t3 = cmul(load(zp + j), load(tw + n4 + j));
      const __m128d ts = _mm_add_pd(t1, t3);
      const __m128d tm = _mm_sub_pd(t1, t3);
      const __m128d td = _mm_xor_pd(_mm_shuffle_pd(tm, tm, 0x1), jmask);
      const __m128d a = load(u0 + j);
      const __m128d c = load(u1 + j);
      store(dst + j, _mm_add_pd(a, ts));
      store(dst + 2 * n4 + j, _mm_sub_pd(a, ts));
      store(dst + n4 + j, _mm_add_pd(c, td));
      store(dst + 3 * n4 + j, _mm_sub_pd(c, td));
    }
    return;
  }
  const __m128d s = _mm_set1_pd(scale);
  for (std::size_t j = 0; j < n4; ++j) {
    const __m128d t1 = cmul(load(z + j), load(tw + j));
    const __m128d t3 = cmul(load(zp + j), load(tw + n4 + j));
    const __m128d ts = _mm_add_pd(t1, t3);
    const __m128d tm = _mm_sub_pd(t1, t3);
    const __m128d td = _mm_xor_pd(_mm_shuffle_pd(tm, tm, 0x1), jmask);
    const __m128d a = load(u0 + j);
    const __m128d c = load(u1 + j);
    store(dst + j, _mm_mul_pd(_mm_add_pd(a, ts), s));
    store(dst + 2 * n4 + j, _mm_mul_pd(_mm_sub_pd(a, ts), s));
    store(dst + n4 + j, _mm_mul_pd(_mm_add_pd(c, td), s));
    store(dst + 3 * n4 + j, _mm_mul_pd(_mm_sub_pd(c, td), s));
  }
}

void fir_cr(const cplx* x, const double* taps, std::size_t n_taps,
            cplx* out, std::size_t n_out) {
  std::size_t i = 0;
  for (; i + 2 <= n_out; i += 2) {
    const cplx* w0 = x + i + n_taps - 1;
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      const __m128d tap = _mm_set1_pd(taps[t]);
      const cplx* s = w0 - t;
      acc0 = _mm_add_pd(acc0, _mm_mul_pd(load(s), tap));
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(load(s + 1), tap));
    }
    store(out + i, acc0);
    store(out + i + 1, acc1);
  }
  for (; i < n_out; ++i) {
    const cplx* w = x + i + n_taps - 1;
    __m128d acc = _mm_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc = _mm_add_pd(acc, _mm_mul_pd(load(w - t),
                                       _mm_set1_pd(taps[t])));
    }
    store(out + i, acc);
  }
}

void fir_cc(const cplx* x, const cplx* taps, std::size_t n_taps,
            cplx* out, std::size_t n_out) {
  std::size_t i = 0;
  for (; i + 2 <= n_out; i += 2) {
    const cplx* w0 = x + i + n_taps - 1;
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      const __m128d tap = load(taps + t);
      const cplx* s = w0 - t;
      acc0 = _mm_add_pd(acc0, cmul(load(s), tap));
      acc1 = _mm_add_pd(acc1, cmul(load(s + 1), tap));
    }
    store(out + i, acc0);
    store(out + i + 1, acc1);
  }
  for (; i < n_out; ++i) {
    const cplx* w = x + i + n_taps - 1;
    __m128d acc = _mm_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc = _mm_add_pd(acc, cmul(load(w - t), load(taps + t)));
    }
    store(out + i, acc);
  }
}

void cvec_add(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    store(out + i, _mm_add_pd(load(a + i), load(b + i)));
  }
}

void cvec_mul(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    store(out + i, cmul(load(a + i), load(b + i)));
  }
}

void cvec_scale(const cplx* in, double s, cplx* out, std::size_t n) {
  const __m128d sv = _mm_set1_pd(s);
  for (std::size_t i = 0; i < n; ++i) {
    store(out + i, _mm_mul_pd(load(in + i), sv));
  }
}

void rvec_add(double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(a + i,
                  _mm_add_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

void demap_soft(const cplx* syms, std::size_t n_sym, const cplx* points,
                std::size_t n_points, std::size_t n_bits,
                const double* noise_var, std::size_t nv_stride,
                double* out) {
  const __m128d big = _mm_set1_pd(1e300);
  std::size_t j = 0;
  // Two symbols per iteration, one lane each. The min scan over points
  // stays in scalar (ascending idx) order per lane; _mm_min_pd keeps
  // the incumbent on ties, matching the scalar `d < best` update (all
  // distances are non-negative, so ±0.0 never disagrees).
  for (; j + 2 <= n_sym; j += 2) {
    __m128d d0[16];
    __m128d d1[16];
    for (std::size_t b = 0; b < n_bits; ++b) {
      d0[b] = big;
      d1[b] = big;
    }
    const __m128d sa = load(syms + j);
    const __m128d sb = load(syms + j + 1);
    const __m128d s_re = _mm_unpacklo_pd(sa, sb);
    const __m128d s_im = _mm_unpackhi_pd(sa, sb);
    for (std::size_t idx = 0; idx < n_points; ++idx) {
      const __m128d dr = _mm_sub_pd(s_re, _mm_set1_pd(points[idx].real()));
      const __m128d di = _mm_sub_pd(s_im, _mm_set1_pd(points[idx].imag()));
      const __m128d d =
          _mm_add_pd(_mm_mul_pd(dr, dr), _mm_mul_pd(di, di));
      for (std::size_t b = 0; b < n_bits; ++b) {
        if ((idx >> (n_bits - 1 - b)) & 1u) {
          d1[b] = _mm_min_pd(d1[b], d);
        } else {
          d0[b] = _mm_min_pd(d0[b], d);
        }
      }
    }
    const __m128d nv =
        nv_stride == 0 ? _mm_set1_pd(noise_var[0])
                       : _mm_set_pd(noise_var[j + 1], noise_var[j]);
    double lanes[2];
    for (std::size_t b = 0; b < n_bits; ++b) {
      _mm_storeu_pd(lanes, _mm_div_pd(_mm_sub_pd(d1[b], d0[b]), nv));
      out[j * n_bits + b] = lanes[0];
      out[(j + 1) * n_bits + b] = lanes[1];
    }
  }
  for (; j < n_sym; ++j) {
    double d0[16];
    double d1[16];
    for (std::size_t b = 0; b < n_bits; ++b) {
      d0[b] = 1e300;
      d1[b] = 1e300;
    }
    const double s_re = syms[j].real();
    const double s_im = syms[j].imag();
    for (std::size_t idx = 0; idx < n_points; ++idx) {
      const double dr = s_re - points[idx].real();
      const double di = s_im - points[idx].imag();
      const double d = dr * dr + di * di;
      for (std::size_t b = 0; b < n_bits; ++b) {
        if ((idx >> (n_bits - 1 - b)) & 1u) {
          if (d < d1[b]) d1[b] = d;
        } else {
          if (d < d0[b]) d0[b] = d;
        }
      }
    }
    const double nv = noise_var[j * nv_stride];
    for (std::size_t b = 0; b < n_bits; ++b) {
      out[j * n_bits + b] = (d1[b] - d0[b]) / nv;
    }
  }
}

}  // namespace sse2

const Kernels& sse2_kernels() {
  static const Kernels table = {
      "sse2",
      sse2::fft_stage,
      sse2::fft_last_stage,
      sse2::fft_sr_gather,
      sse2::fft_sr_combine,
      sse2::fft_sr_last,
      sse2::fir_cr,
      sse2::fir_cc,
      sse2::cvec_add,
      sse2::cvec_mul,
      sse2::cvec_scale,
      sse2::rvec_add,
      scalar_kernels().map_lut,
      sse2::demap_soft,
  };
  return table;
}

}  // namespace ofdm::simd

#endif  // x86-64
