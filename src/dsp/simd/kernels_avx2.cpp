// AVX2 tier: two complexes per 256-bit register. This TU is the only
// one compiled with -mavx2; it is reached only after dispatch.cpp
// confirms the CPU reports AVX2.
//
// Bit-identity notes (versus the scalar tier):
//  - complex multiply is the movedup/permute/addsub idiom: per lane it
//    computes the same two products and the same add/sub as scalar
//    (vaddsubpd's subtract lane is a true IEEE subtraction, and the
//    imaginary lane's sum commutes);
//  - FIR lanes each own one output and accumulate taps in ascending
//    (scalar delay-line) order — adjacent outputs read adjacent window
//    samples, so one unaligned load feeds two lanes;
//  - compiled with -ffp-contract=off (unless OFDM_SIMD_ALLOW_FMA) so
//    the compiler cannot fuse the mul/add pairs behind our back.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "dsp/simd/kernels.hpp"

namespace ofdm::simd {
namespace avx2 {

/// Per lane pair: [a.re*b.re - a.im*b.im, a.im*b.re + a.re*b.im]
inline __m256d cmul(__m256d a, __m256d b) {
  const __m256d b_re = _mm256_movedup_pd(b);
  const __m256d b_im = _mm256_permute_pd(b, 0xF);
  const __m256d a_swap = _mm256_permute_pd(a, 0x5);
  return _mm256_addsub_pd(_mm256_mul_pd(a, b_re),
                          _mm256_mul_pd(a_swap, b_im));
}

inline __m256d load2(const cplx* p) {
  return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}
inline void store2(cplx* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}
inline __m128d load1(const cplx* p) {
  return _mm_loadu_pd(reinterpret_cast<const double*>(p));
}
inline void store1(cplx* p, __m128d v) {
  _mm_storeu_pd(reinterpret_cast<double*>(p), v);
}

/// One butterfly via SSE lanes (tails and half == 1 stages).
inline void butterfly1(cplx* lo, cplx* hi, const cplx* tw) {
  const __m128d b = load1(tw);
  const __m128d a = load1(hi);
  const __m128d b_re = _mm_shuffle_pd(b, b, 0x0);
  const __m128d b_im = _mm_shuffle_pd(b, b, 0x3);
  const __m128d a_swap = _mm_shuffle_pd(a, a, 0x1);
  const __m128d t =
      _mm_addsub_pd(_mm_mul_pd(a, b_re), _mm_mul_pd(a_swap, b_im));
  const __m128d u = load1(lo);
  store1(lo, _mm_add_pd(u, t));
  store1(hi, _mm_sub_pd(u, t));
}

void fft_stage(cplx* d, const cplx* tw, std::size_t n,
               std::size_t len) {
  const std::size_t half = len / 2;
  if (half >= 2) {
    for (std::size_t base = 0; base < n; base += len) {
      cplx* lo = d + base;
      cplx* hi = lo + half;
      std::size_t k = 0;
      for (; k + 2 <= half; k += 2) {
        const __m256d t = cmul(load2(hi + k), load2(tw + k));
        const __m256d u = load2(lo + k);
        store2(lo + k, _mm256_add_pd(u, t));
        store2(hi + k, _mm256_sub_pd(u, t));
      }
      for (; k < half; ++k) butterfly1(lo + k, hi + k, tw + k);
    }
    return;
  }
  // len == 2: one-butterfly blocks. Vectorize across two adjacent
  // blocks: [u0, h0] and [u1, h1] regroup into [u0, u1] / [h0, h1].
  const __m256d w = _mm256_broadcast_pd(
      reinterpret_cast<const __m128d*>(tw));
  std::size_t base = 0;
  for (; base + 4 <= n; base += 4) {
    const __m256d v0 = load2(d + base);
    const __m256d v1 = load2(d + base + 2);
    const __m256d u = _mm256_permute2f128_pd(v0, v1, 0x20);
    const __m256d h = _mm256_permute2f128_pd(v0, v1, 0x31);
    const __m256d t = cmul(h, w);
    const __m256d lo = _mm256_add_pd(u, t);
    const __m256d hi = _mm256_sub_pd(u, t);
    store2(d + base, _mm256_permute2f128_pd(lo, hi, 0x20));
    store2(d + base + 2, _mm256_permute2f128_pd(lo, hi, 0x31));
  }
  for (; base < n; base += 2) {
    butterfly1(d + base, d + base + 1, tw);
  }
}

void fft_last_stage(cplx* d, const cplx* tw, std::size_t half,
                    double scale) {
  cplx* lo = d;
  cplx* hi = d + half;
  if (scale == 1.0) {
    std::size_t k = 0;
    for (; k + 2 <= half; k += 2) {
      const __m256d t = cmul(load2(hi + k), load2(tw + k));
      const __m256d u = load2(lo + k);
      store2(lo + k, _mm256_add_pd(u, t));
      store2(hi + k, _mm256_sub_pd(u, t));
    }
    for (; k < half; ++k) butterfly1(lo + k, hi + k, tw + k);
    return;
  }
  const __m256d s = _mm256_set1_pd(scale);
  std::size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const __m256d t = cmul(load2(hi + k), load2(tw + k));
    const __m256d u = load2(lo + k);
    store2(lo + k, _mm256_mul_pd(_mm256_add_pd(u, t), s));
    store2(hi + k, _mm256_mul_pd(_mm256_sub_pd(u, t), s));
  }
  const __m128d s1 = _mm256_castpd256_pd128(s);
  for (; k < half; ++k) {
    const __m128d b = load1(tw + k);
    const __m128d a = load1(hi + k);
    const __m128d b_re = _mm_shuffle_pd(b, b, 0x0);
    const __m128d b_im = _mm_shuffle_pd(b, b, 0x3);
    const __m128d a_swap = _mm_shuffle_pd(a, a, 0x1);
    const __m128d t =
        _mm_addsub_pd(_mm_mul_pd(a, b_re), _mm_mul_pd(a_swap, b_im));
    const __m128d u = load1(lo + k);
    store1(lo + k, _mm_mul_pd(_mm_add_pd(u, t), s1));
    store1(hi + k, _mm_mul_pd(_mm_sub_pd(u, t), s1));
  }
}

// The split-radix ∓j legs are a component swap plus an XOR sign flip
// — both exact, matching the scalar rot90 bit-for-bit. The masks
// negate the imaginary lane(s) forward (-j) and the real lane(s)
// inverse (+j).
inline __m128d jmask1(bool inverse) {
  const long long s = static_cast<long long>(0x8000000000000000ULL);
  return _mm_castsi128_pd(inverse ? _mm_set_epi64x(0, s)
                                  : _mm_set_epi64x(s, 0));
}
inline __m256d jmask2(bool inverse) {
  const long long s = static_cast<long long>(0x8000000000000000ULL);
  return _mm256_castsi256_pd(inverse ? _mm256_set_epi64x(0, s, 0, s)
                                     : _mm256_set_epi64x(s, 0, s, 0));
}

void fft_sr_gather(const cplx* in, cplx* out, const std::uint32_t* perm,
                   const std::uint32_t* quads, std::size_t n_quads,
                   const std::uint32_t* pairs, std::size_t n_pairs,
                   bool inverse) {
  const __m128d jm = jmask1(inverse);
  for (std::size_t q = 0; q < n_quads; ++q) {
    const std::size_t p = quads[q];
    const __m128d g0 = load1(in + perm[p]);
    const __m128d g1 = load1(in + perm[p + 1]);
    const __m128d g2 = load1(in + perm[p + 2]);
    const __m128d g3 = load1(in + perm[p + 3]);
    const __m128d e0 = _mm_add_pd(g0, g1);
    const __m128d e1 = _mm_sub_pd(g0, g1);
    const __m128d ts = _mm_add_pd(g2, g3);
    const __m128d tm = _mm_sub_pd(g2, g3);
    const __m128d td = _mm_xor_pd(_mm_shuffle_pd(tm, tm, 0x1), jm);
    store1(out + p, _mm_add_pd(e0, ts));
    store1(out + p + 2, _mm_sub_pd(e0, ts));
    store1(out + p + 1, _mm_add_pd(e1, td));
    store1(out + p + 3, _mm_sub_pd(e1, td));
  }
  for (std::size_t r = 0; r < n_pairs; ++r) {
    const std::size_t p = pairs[r];
    const __m128d g0 = load1(in + perm[p]);
    const __m128d g1 = load1(in + perm[p + 1]);
    store1(out + p, _mm_add_pd(g0, g1));
    store1(out + p + 1, _mm_sub_pd(g0, g1));
  }
}

/// Two split-radix butterflies per iteration; the planar twiddle
/// layout (all W^j, then all W^{3j}) keeps both loads contiguous.
inline void sr_block2(cplx* u0, cplx* u1, cplx* z, cplx* zp,
                      const cplx* tw, std::size_t n4, __m256d jm) {
  for (std::size_t j = 0; j + 2 <= n4; j += 2) {
    const __m256d t1 = cmul(load2(z + j), load2(tw + j));
    const __m256d t3 = cmul(load2(zp + j), load2(tw + n4 + j));
    const __m256d ts = _mm256_add_pd(t1, t3);
    const __m256d tm = _mm256_sub_pd(t1, t3);
    const __m256d td = _mm256_xor_pd(_mm256_permute_pd(tm, 0x5), jm);
    const __m256d a = load2(u0 + j);
    const __m256d c = load2(u1 + j);
    store2(u0 + j, _mm256_add_pd(a, ts));
    store2(z + j, _mm256_sub_pd(a, ts));
    store2(u1 + j, _mm256_add_pd(c, td));
    store2(zp + j, _mm256_sub_pd(c, td));
  }
}

void fft_sr_combine(cplx* d, const cplx* tw, const std::uint32_t* offs,
                    std::size_t n_offs, std::size_t n4, bool inverse) {
  // The plan only emits levels of size >= 8, so n4 is a power of two
  // >= 2 and the paired loop needs no tail.
  const __m256d jm = jmask2(inverse);
  if (n4 == 2) {
    // The size-8 level holds n/8 blocks — by far the most of any level
    // — and its whole twiddle table is two registers. Hoist the loads
    // out of the block loop (the compiler can't: the block stores may
    // alias `tw` as far as it knows). Same per-element op sequence as
    // sr_block2, so bit-identity holds.
    const __m256d w1 = load2(tw);
    const __m256d w3 = load2(tw + 2);
    for (std::size_t b = 0; b < n_offs; ++b) {
      cplx* const u0 = d + offs[b];
      const __m256d t1 = cmul(load2(u0 + 4), w1);
      const __m256d t3 = cmul(load2(u0 + 6), w3);
      const __m256d ts = _mm256_add_pd(t1, t3);
      const __m256d tm = _mm256_sub_pd(t1, t3);
      const __m256d td = _mm256_xor_pd(_mm256_permute_pd(tm, 0x5), jm);
      const __m256d a = load2(u0);
      const __m256d c = load2(u0 + 2);
      store2(u0, _mm256_add_pd(a, ts));
      store2(u0 + 4, _mm256_sub_pd(a, ts));
      store2(u0 + 2, _mm256_add_pd(c, td));
      store2(u0 + 6, _mm256_sub_pd(c, td));
    }
    return;
  }
  for (std::size_t b = 0; b < n_offs; ++b) {
    cplx* const u0 = d + offs[b];
    sr_block2(u0, u0 + n4, u0 + 2 * n4, u0 + 3 * n4, tw, n4, jm);
  }
}

void fft_sr_last(const cplx* src, cplx* dst, const cplx* tw,
                 std::size_t n4, bool inverse, double scale) {
  const __m256d jm = jmask2(inverse);
  const cplx* const u0 = src;
  const cplx* const u1 = src + n4;
  const cplx* const z = src + 2 * n4;
  const cplx* const zp = src + 3 * n4;
  if (scale == 1.0) {
    for (std::size_t j = 0; j + 2 <= n4; j += 2) {
      const __m256d t1 = cmul(load2(z + j), load2(tw + j));
      const __m256d t3 = cmul(load2(zp + j), load2(tw + n4 + j));
      const __m256d ts = _mm256_add_pd(t1, t3);
      const __m256d tm = _mm256_sub_pd(t1, t3);
      const __m256d td = _mm256_xor_pd(_mm256_permute_pd(tm, 0x5), jm);
      const __m256d a = load2(u0 + j);
      const __m256d c = load2(u1 + j);
      store2(dst + j, _mm256_add_pd(a, ts));
      store2(dst + 2 * n4 + j, _mm256_sub_pd(a, ts));
      store2(dst + n4 + j, _mm256_add_pd(c, td));
      store2(dst + 3 * n4 + j, _mm256_sub_pd(c, td));
    }
    return;
  }
  const __m256d s = _mm256_set1_pd(scale);
  for (std::size_t j = 0; j + 2 <= n4; j += 2) {
    const __m256d t1 = cmul(load2(z + j), load2(tw + j));
    const __m256d t3 = cmul(load2(zp + j), load2(tw + n4 + j));
    const __m256d ts = _mm256_add_pd(t1, t3);
    const __m256d tm = _mm256_sub_pd(t1, t3);
    const __m256d td = _mm256_xor_pd(_mm256_permute_pd(tm, 0x5), jm);
    const __m256d a = load2(u0 + j);
    const __m256d c = load2(u1 + j);
    store2(dst + j, _mm256_mul_pd(_mm256_add_pd(a, ts), s));
    store2(dst + 2 * n4 + j, _mm256_mul_pd(_mm256_sub_pd(a, ts), s));
    store2(dst + n4 + j, _mm256_mul_pd(_mm256_add_pd(c, td), s));
    store2(dst + 3 * n4 + j, _mm256_mul_pd(_mm256_sub_pd(c, td), s));
  }
}

void fir_cr(const cplx* x, const double* taps, std::size_t n_taps,
            cplx* out, std::size_t n_out) {
  std::size_t i = 0;
  // Four outputs per iteration: two 256-bit accumulators, each lane
  // pair owning one output's (re, im).
  for (; i + 4 <= n_out; i += 4) {
    const cplx* w0 = x + i + n_taps - 1;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      const __m256d tap = _mm256_set1_pd(taps[t]);
      const cplx* s = w0 - t;
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(load2(s), tap));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(load2(s + 2), tap));
    }
    store2(out + i, acc0);
    store2(out + i + 2, acc1);
  }
  for (; i + 2 <= n_out; i += 2) {
    const cplx* w0 = x + i + n_taps - 1;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(load2(w0 - t), _mm256_set1_pd(taps[t])));
    }
    store2(out + i, acc);
  }
  for (; i < n_out; ++i) {
    const cplx* w = x + i + n_taps - 1;
    __m128d acc = _mm_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc = _mm_add_pd(acc,
                       _mm_mul_pd(load1(w - t), _mm_set1_pd(taps[t])));
    }
    store1(out + i, acc);
  }
}

void fir_cc(const cplx* x, const cplx* taps, std::size_t n_taps,
            cplx* out, std::size_t n_out) {
  std::size_t i = 0;
  for (; i + 4 <= n_out; i += 4) {
    const cplx* w0 = x + i + n_taps - 1;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      const __m256d tap = _mm256_broadcast_pd(
          reinterpret_cast<const __m128d*>(taps + t));
      const cplx* s = w0 - t;
      acc0 = _mm256_add_pd(acc0, cmul(load2(s), tap));
      acc1 = _mm256_add_pd(acc1, cmul(load2(s + 2), tap));
    }
    store2(out + i, acc0);
    store2(out + i + 2, acc1);
  }
  for (; i + 2 <= n_out; i += 2) {
    const cplx* w0 = x + i + n_taps - 1;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      const __m256d tap = _mm256_broadcast_pd(
          reinterpret_cast<const __m128d*>(taps + t));
      acc = _mm256_add_pd(acc, cmul(load2(w0 - t), tap));
    }
    store2(out + i, acc);
  }
  for (; i < n_out; ++i) {
    const cplx* w = x + i + n_taps - 1;
    __m128d acc = _mm_setzero_pd();
    for (std::size_t t = 0; t < n_taps; ++t) {
      const __m128d b = load1(taps + t);
      const __m128d a = load1(w - t);
      const __m128d b_re = _mm_shuffle_pd(b, b, 0x0);
      const __m128d b_im = _mm_shuffle_pd(b, b, 0x3);
      const __m128d a_swap = _mm_shuffle_pd(a, a, 0x1);
      acc = _mm_add_pd(acc, _mm_addsub_pd(_mm_mul_pd(a, b_re),
                                          _mm_mul_pd(a_swap, b_im)));
    }
    store1(out + i, acc);
  }
}

void cvec_add(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    store2(out + i, _mm256_add_pd(load2(a + i), load2(b + i)));
  }
  for (; i < n; ++i) {
    store1(out + i, _mm_add_pd(load1(a + i), load1(b + i)));
  }
}

void cvec_mul(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    store2(out + i, cmul(load2(a + i), load2(b + i)));
  }
  for (; i < n; ++i) {
    const __m128d bv = load1(b + i);
    const __m128d av = load1(a + i);
    const __m128d b_re = _mm_shuffle_pd(bv, bv, 0x0);
    const __m128d b_im = _mm_shuffle_pd(bv, bv, 0x3);
    const __m128d a_swap = _mm_shuffle_pd(av, av, 0x1);
    store1(out + i, _mm_addsub_pd(_mm_mul_pd(av, b_re),
                                  _mm_mul_pd(a_swap, b_im)));
  }
}

void cvec_scale(const cplx* in, double s, cplx* out, std::size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    store2(out + i, _mm256_mul_pd(load2(in + i), sv));
  }
  for (; i < n; ++i) {
    store1(out + i,
           _mm_mul_pd(load1(in + i), _mm256_castpd256_pd128(sv)));
  }
}

void rvec_add(double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                             _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

void demap_soft(const cplx* syms, std::size_t n_sym, const cplx* points,
                std::size_t n_points, std::size_t n_bits,
                const double* noise_var, std::size_t nv_stride,
                double* out) {
  const __m256d big = _mm256_set1_pd(1e300);
  std::size_t j = 0;
  // Four symbols per iteration. unpacklo/hi over the two 128-bit halves
  // leaves the lanes in symbol order [j, j+2, j+1, j+3]; the stores (and
  // the per-symbol noise-variance gather) follow that order. Lanes are
  // independent, so the scramble never mixes symbols. _mm256_min_pd
  // keeps the incumbent on ties, matching the scalar `d < best` update.
  for (; j + 4 <= n_sym; j += 4) {
    __m256d d0[16];
    __m256d d1[16];
    for (std::size_t b = 0; b < n_bits; ++b) {
      d0[b] = big;
      d1[b] = big;
    }
    const __m256d sa = load2(syms + j);
    const __m256d sb = load2(syms + j + 2);
    const __m256d s_re = _mm256_unpacklo_pd(sa, sb);
    const __m256d s_im = _mm256_unpackhi_pd(sa, sb);
    for (std::size_t idx = 0; idx < n_points; ++idx) {
      const __m256d dr =
          _mm256_sub_pd(s_re, _mm256_set1_pd(points[idx].real()));
      const __m256d di =
          _mm256_sub_pd(s_im, _mm256_set1_pd(points[idx].imag()));
      const __m256d d =
          _mm256_add_pd(_mm256_mul_pd(dr, dr), _mm256_mul_pd(di, di));
      for (std::size_t b = 0; b < n_bits; ++b) {
        if ((idx >> (n_bits - 1 - b)) & 1u) {
          d1[b] = _mm256_min_pd(d1[b], d);
        } else {
          d0[b] = _mm256_min_pd(d0[b], d);
        }
      }
    }
    const __m256d nv =
        nv_stride == 0
            ? _mm256_set1_pd(noise_var[0])
            : _mm256_permute4x64_pd(_mm256_loadu_pd(noise_var + j),
                                    _MM_SHUFFLE(3, 1, 2, 0));
    double lanes[4];
    for (std::size_t b = 0; b < n_bits; ++b) {
      _mm256_storeu_pd(lanes,
                       _mm256_div_pd(_mm256_sub_pd(d1[b], d0[b]), nv));
      out[(j + 0) * n_bits + b] = lanes[0];
      out[(j + 2) * n_bits + b] = lanes[1];
      out[(j + 1) * n_bits + b] = lanes[2];
      out[(j + 3) * n_bits + b] = lanes[3];
    }
  }
  for (; j < n_sym; ++j) {
    double d0[16];
    double d1[16];
    for (std::size_t b = 0; b < n_bits; ++b) {
      d0[b] = 1e300;
      d1[b] = 1e300;
    }
    const double s_re = syms[j].real();
    const double s_im = syms[j].imag();
    for (std::size_t idx = 0; idx < n_points; ++idx) {
      const double dr = s_re - points[idx].real();
      const double di = s_im - points[idx].imag();
      const double d = dr * dr + di * di;
      for (std::size_t b = 0; b < n_bits; ++b) {
        if ((idx >> (n_bits - 1 - b)) & 1u) {
          if (d < d1[b]) d1[b] = d;
        } else {
          if (d < d0[b]) d0[b] = d;
        }
      }
    }
    const double nv = noise_var[j * nv_stride];
    for (std::size_t b = 0; b < n_bits; ++b) {
      out[j * n_bits + b] = (d1[b] - d0[b]) / nv;
    }
  }
}

}  // namespace avx2

const Kernels& avx2_kernels() {
  static const Kernels table = {
      "avx2",
      avx2::fft_stage,
      avx2::fft_last_stage,
      avx2::fft_sr_gather,
      avx2::fft_sr_combine,
      avx2::fft_sr_last,
      avx2::fir_cr,
      avx2::fir_cc,
      avx2::cvec_add,
      avx2::cvec_mul,
      avx2::cvec_scale,
      avx2::rvec_add,
      scalar_kernels().map_lut,
      avx2::demap_soft,
  };
  return table;
}

}  // namespace ofdm::simd

#endif  // x86-64
