#include "dsp/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace ofdm::simd {
namespace {

const Kernels* table_for(Tier tier) {
  switch (tier) {
#if defined(__x86_64__) || defined(_M_X64)
    case Tier::kSse2:
      return &sse2_kernels();
    case Tier::kAvx2:
      return &avx2_kernels();
#endif
#if defined(__aarch64__)
    case Tier::kNeon:
      return &neon_kernels();
#endif
    default:
      return &scalar_kernels();
  }
}

/// Clamp a requested tier to what this build + CPU can actually run.
Tier clamp_to_supported(Tier tier) {
#if defined(__x86_64__) || defined(_M_X64)
  if (tier == Tier::kNeon) return best_supported_tier();
  if (tier == Tier::kAvx2 && !__builtin_cpu_supports("avx2")) {
    return Tier::kSse2;
  }
  return tier;
#elif defined(__aarch64__)
  if (tier == Tier::kSse2 || tier == Tier::kAvx2) return Tier::kNeon;
  return tier;
#else
  (void)tier;
  return Tier::kScalar;
#endif
}

Tier tier_from_env() {
  const char* env = std::getenv("OFDM_SIMD");
  if (env == nullptr || *env == '\0' ||
      std::strcmp(env, "auto") == 0) {
    return best_supported_tier();
  }
  if (std::strcmp(env, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(env, "sse2") == 0) {
    return clamp_to_supported(Tier::kSse2);
  }
  if (std::strcmp(env, "avx2") == 0) {
    return clamp_to_supported(Tier::kAvx2);
  }
  if (std::strcmp(env, "neon") == 0) {
    return clamp_to_supported(Tier::kNeon);
  }
  OFDM_REQUIRE(false, std::string("OFDM_SIMD: unknown tier '") + env +
                          "' (want scalar|sse2|avx2|neon|auto)");
  return Tier::kScalar;
}

std::atomic<const Kernels*> g_kernels{nullptr};
std::atomic<Tier> g_tier{Tier::kScalar};

const Kernels* resolve() {
  const Tier tier = tier_from_env();
  const Kernels* table = table_for(tier);
  g_tier.store(tier, std::memory_order_relaxed);
  // First resolver wins; a concurrent force_tier() may already have
  // installed a table, in which case keep it.
  const Kernels* expected = nullptr;
  if (g_kernels.compare_exchange_strong(expected, table,
                                        std::memory_order_release,
                                        std::memory_order_acquire)) {
    return table;
  }
  return expected;
}

}  // namespace

Tier best_supported_tier() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") ? Tier::kAvx2 : Tier::kSse2;
#elif defined(__aarch64__)
  return Tier::kNeon;
#else
  return Tier::kScalar;
#endif
}

const Kernels& kernels() {
  const Kernels* table = g_kernels.load(std::memory_order_acquire);
  if (table == nullptr) table = resolve();
  return *table;
}

Tier active_tier() {
  kernels();  // force resolution
  return g_tier.load(std::memory_order_relaxed);
}

std::string tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
  }
  return "scalar";
}

Tier force_tier(Tier tier) {
  const Tier actual = clamp_to_supported(tier);
  g_tier.store(actual, std::memory_order_relaxed);
  g_kernels.store(table_for(actual), std::memory_order_release);
  return actual;
}

}  // namespace ofdm::simd
