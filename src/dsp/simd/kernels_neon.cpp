// NEON tier (AArch64): one complex per 128-bit register, with
// deinterleaved vld2q loads where two outputs are produced per
// iteration. All arithmetic is plain vmul/vadd/vsub — never
// vmla/vfma, which would fuse the rounding and break bit-identity
// with the scalar reference.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

#include "dsp/simd/kernels.hpp"

namespace ofdm::simd {
namespace neon {

/// [a.re*b.re - a.im*b.im, a.im*b.re + a.re*b.im]
inline float64x2_t cmul(float64x2_t a, float64x2_t b) {
  const float64x2_t b_re = vdupq_laneq_f64(b, 0);
  const float64x2_t b_im = vdupq_laneq_f64(b, 1);
  const float64x2_t a_swap = vextq_f64(a, a, 1);
  const float64x2_t prod_re = vmulq_f64(a, b_re);
  const float64x2_t prod_im = vmulq_f64(a_swap, b_im);
  // lane 0: a.re*b.re - a.im*b.im; lane 1: a.im*b.re + a.re*b.im
  const float64x2_t sub = vsubq_f64(prod_re, prod_im);
  const float64x2_t add = vaddq_f64(prod_re, prod_im);
  return vcombine_f64(vget_low_f64(sub), vget_high_f64(add));
}

inline float64x2_t load(const cplx* p) {
  return vld1q_f64(reinterpret_cast<const double*>(p));
}
inline void store(cplx* p, float64x2_t v) {
  vst1q_f64(reinterpret_cast<double*>(p), v);
}

void fft_stage(cplx* d, const cplx* tw, std::size_t n,
               std::size_t len) {
  const std::size_t half = len / 2;
  for (std::size_t base = 0; base < n; base += len) {
    cplx* lo = d + base;
    cplx* hi = lo + half;
    for (std::size_t k = 0; k < half; ++k) {
      const float64x2_t t = cmul(load(hi + k), load(tw + k));
      const float64x2_t u = load(lo + k);
      store(lo + k, vaddq_f64(u, t));
      store(hi + k, vsubq_f64(u, t));
    }
  }
}

void fft_last_stage(cplx* d, const cplx* tw, std::size_t half,
                    double scale) {
  cplx* lo = d;
  cplx* hi = d + half;
  if (scale == 1.0) {
    for (std::size_t k = 0; k < half; ++k) {
      const float64x2_t t = cmul(load(hi + k), load(tw + k));
      const float64x2_t u = load(lo + k);
      store(lo + k, vaddq_f64(u, t));
      store(hi + k, vsubq_f64(u, t));
    }
    return;
  }
  const float64x2_t s = vdupq_n_f64(scale);
  for (std::size_t k = 0; k < half; ++k) {
    const float64x2_t t = cmul(load(hi + k), load(tw + k));
    const float64x2_t u = load(lo + k);
    store(lo + k, vmulq_f64(vaddq_f64(u, t), s));
    store(hi + k, vmulq_f64(vsubq_f64(u, t), s));
  }
}

/// ∓j * v: swap the two lanes, then negate one of them — both exact,
/// matching the scalar rot90 bit-for-bit.
inline float64x2_t rot90(float64x2_t v, bool inverse) {
  return inverse
             ? vcombine_f64(vneg_f64(vget_high_f64(v)), vget_low_f64(v))
             : vcombine_f64(vget_high_f64(v), vneg_f64(vget_low_f64(v)));
}

void fft_sr_gather(const cplx* in, cplx* out, const std::uint32_t* perm,
                   const std::uint32_t* quads, std::size_t n_quads,
                   const std::uint32_t* pairs, std::size_t n_pairs,
                   bool inverse) {
  for (std::size_t q = 0; q < n_quads; ++q) {
    const std::size_t p = quads[q];
    const float64x2_t g0 = load(in + perm[p]);
    const float64x2_t g1 = load(in + perm[p + 1]);
    const float64x2_t g2 = load(in + perm[p + 2]);
    const float64x2_t g3 = load(in + perm[p + 3]);
    const float64x2_t e0 = vaddq_f64(g0, g1);
    const float64x2_t e1 = vsubq_f64(g0, g1);
    const float64x2_t ts = vaddq_f64(g2, g3);
    const float64x2_t td = rot90(vsubq_f64(g2, g3), inverse);
    store(out + p, vaddq_f64(e0, ts));
    store(out + p + 2, vsubq_f64(e0, ts));
    store(out + p + 1, vaddq_f64(e1, td));
    store(out + p + 3, vsubq_f64(e1, td));
  }
  for (std::size_t r = 0; r < n_pairs; ++r) {
    const std::size_t p = pairs[r];
    const float64x2_t g0 = load(in + perm[p]);
    const float64x2_t g1 = load(in + perm[p + 1]);
    store(out + p, vaddq_f64(g0, g1));
    store(out + p + 1, vsubq_f64(g0, g1));
  }
}

void fft_sr_combine(cplx* d, const cplx* tw, const std::uint32_t* offs,
                    std::size_t n_offs, std::size_t n4, bool inverse) {
  for (std::size_t b = 0; b < n_offs; ++b) {
    cplx* const u0 = d + offs[b];
    cplx* const u1 = u0 + n4;
    cplx* const z = u0 + 2 * n4;
    cplx* const zp = u0 + 3 * n4;
    for (std::size_t j = 0; j < n4; ++j) {
      const float64x2_t t1 = cmul(load(z + j), load(tw + j));
      const float64x2_t t3 = cmul(load(zp + j), load(tw + n4 + j));
      const float64x2_t ts = vaddq_f64(t1, t3);
      const float64x2_t td = rot90(vsubq_f64(t1, t3), inverse);
      const float64x2_t a = load(u0 + j);
      const float64x2_t c = load(u1 + j);
      store(u0 + j, vaddq_f64(a, ts));
      store(z + j, vsubq_f64(a, ts));
      store(u1 + j, vaddq_f64(c, td));
      store(zp + j, vsubq_f64(c, td));
    }
  }
}

void fft_sr_last(const cplx* src, cplx* dst, const cplx* tw,
                 std::size_t n4, bool inverse, double scale) {
  const cplx* const u0 = src;
  const cplx* const u1 = src + n4;
  const cplx* const z = src + 2 * n4;
  const cplx* const zp = src + 3 * n4;
  if (scale == 1.0) {
    for (std::size_t j = 0; j < n4; ++j) {
      const float64x2_t t1 = cmul(load(z + j), load(tw + j));
      const float64x2_t t3 = cmul(load(zp + j), load(tw + n4 + j));
      const float64x2_t ts = vaddq_f64(t1, t3);
      const float64x2_t td = rot90(vsubq_f64(t1, t3), inverse);
      const float64x2_t a = load(u0 + j);
      const float64x2_t c = load(u1 + j);
      store(dst + j, vaddq_f64(a, ts));
      store(dst + 2 * n4 + j, vsubq_f64(a, ts));
      store(dst + n4 + j, vaddq_f64(c, td));
      store(dst + 3 * n4 + j, vsubq_f64(c, td));
    }
    return;
  }
  const float64x2_t s = vdupq_n_f64(scale);
  for (std::size_t j = 0; j < n4; ++j) {
    const float64x2_t t1 = cmul(load(z + j), load(tw + j));
    const float64x2_t t3 = cmul(load(zp + j), load(tw + n4 + j));
    const float64x2_t ts = vaddq_f64(t1, t3);
    const float64x2_t td = rot90(vsubq_f64(t1, t3), inverse);
    const float64x2_t a = load(u0 + j);
    const float64x2_t c = load(u1 + j);
    store(dst + j, vmulq_f64(vaddq_f64(a, ts), s));
    store(dst + 2 * n4 + j, vmulq_f64(vsubq_f64(a, ts), s));
    store(dst + n4 + j, vmulq_f64(vaddq_f64(c, td), s));
    store(dst + 3 * n4 + j, vmulq_f64(vsubq_f64(c, td), s));
  }
}

void fir_cr(const cplx* x, const double* taps, std::size_t n_taps,
            cplx* out, std::size_t n_out) {
  std::size_t i = 0;
  // Two outputs per iteration, deinterleaved: acc.val[0] carries both
  // outputs' real parts, acc.val[1] both imaginary parts.
  for (; i + 2 <= n_out; i += 2) {
    const double* w0 =
        reinterpret_cast<const double*>(x + i + n_taps - 1);
    float64x2_t acc_re = vdupq_n_f64(0.0);
    float64x2_t acc_im = vdupq_n_f64(0.0);
    for (std::size_t t = 0; t < n_taps; ++t) {
      const float64x2_t tap = vdupq_n_f64(taps[t]);
      const float64x2x2_t s = vld2q_f64(w0 - 2 * t);
      acc_re = vaddq_f64(acc_re, vmulq_f64(s.val[0], tap));
      acc_im = vaddq_f64(acc_im, vmulq_f64(s.val[1], tap));
    }
    float64x2x2_t res;
    res.val[0] = acc_re;
    res.val[1] = acc_im;
    vst2q_f64(reinterpret_cast<double*>(out + i), res);
  }
  for (; i < n_out; ++i) {
    const cplx* w = x + i + n_taps - 1;
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc = vaddq_f64(acc, vmulq_f64(load(w - t), vdupq_n_f64(taps[t])));
    }
    store(out + i, acc);
  }
}

void fir_cc(const cplx* x, const cplx* taps, std::size_t n_taps,
            cplx* out, std::size_t n_out) {
  std::size_t i = 0;
  for (; i + 2 <= n_out; i += 2) {
    const double* w0 =
        reinterpret_cast<const double*>(x + i + n_taps - 1);
    float64x2_t acc_re = vdupq_n_f64(0.0);
    float64x2_t acc_im = vdupq_n_f64(0.0);
    for (std::size_t t = 0; t < n_taps; ++t) {
      const float64x2_t tap_re = vdupq_n_f64(taps[t].real());
      const float64x2_t tap_im = vdupq_n_f64(taps[t].imag());
      const float64x2x2_t s = vld2q_f64(w0 - 2 * t);
      // p = s * tap, naive form per lane
      const float64x2_t p_re = vsubq_f64(vmulq_f64(s.val[0], tap_re),
                                         vmulq_f64(s.val[1], tap_im));
      const float64x2_t p_im = vaddq_f64(vmulq_f64(s.val[0], tap_im),
                                         vmulq_f64(s.val[1], tap_re));
      acc_re = vaddq_f64(acc_re, p_re);
      acc_im = vaddq_f64(acc_im, p_im);
    }
    float64x2x2_t res;
    res.val[0] = acc_re;
    res.val[1] = acc_im;
    vst2q_f64(reinterpret_cast<double*>(out + i), res);
  }
  for (; i < n_out; ++i) {
    const cplx* w = x + i + n_taps - 1;
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc = vaddq_f64(acc, cmul(load(w - t), load(taps + t)));
    }
    store(out + i, acc);
  }
}

void cvec_add(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    store(out + i, vaddq_f64(load(a + i), load(b + i)));
  }
}

void cvec_mul(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    store(out + i, cmul(load(a + i), load(b + i)));
  }
}

void cvec_scale(const cplx* in, double s, cplx* out, std::size_t n) {
  const float64x2_t sv = vdupq_n_f64(s);
  for (std::size_t i = 0; i < n; ++i) {
    store(out + i, vmulq_f64(load(in + i), sv));
  }
}

void rvec_add(double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(a + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

void demap_soft(const cplx* syms, std::size_t n_sym, const cplx* points,
                std::size_t n_points, std::size_t n_bits,
                const double* noise_var, std::size_t nv_stride,
                double* out) {
  const float64x2_t big = vdupq_n_f64(1e300);
  std::size_t j = 0;
  // Two symbols per iteration via a deinterleaving vld2q load. vminq
  // keeps the incumbent on ties, matching the scalar `d < best` update
  // (all distances are non-negative, so ±0.0 never disagrees).
  for (; j + 2 <= n_sym; j += 2) {
    float64x2_t d0[16];
    float64x2_t d1[16];
    for (std::size_t b = 0; b < n_bits; ++b) {
      d0[b] = big;
      d1[b] = big;
    }
    const float64x2x2_t s =
        vld2q_f64(reinterpret_cast<const double*>(syms + j));
    const float64x2_t s_re = s.val[0];
    const float64x2_t s_im = s.val[1];
    for (std::size_t idx = 0; idx < n_points; ++idx) {
      const float64x2_t dr =
          vsubq_f64(s_re, vdupq_n_f64(points[idx].real()));
      const float64x2_t di =
          vsubq_f64(s_im, vdupq_n_f64(points[idx].imag()));
      const float64x2_t d =
          vaddq_f64(vmulq_f64(dr, dr), vmulq_f64(di, di));
      for (std::size_t b = 0; b < n_bits; ++b) {
        if ((idx >> (n_bits - 1 - b)) & 1u) {
          d1[b] = vminq_f64(d1[b], d);
        } else {
          d0[b] = vminq_f64(d0[b], d);
        }
      }
    }
    const float64x2_t nv = nv_stride == 0
                               ? vdupq_n_f64(noise_var[0])
                               : vld1q_f64(noise_var + j);
    double lanes[2];
    for (std::size_t b = 0; b < n_bits; ++b) {
      vst1q_f64(lanes, vdivq_f64(vsubq_f64(d1[b], d0[b]), nv));
      out[j * n_bits + b] = lanes[0];
      out[(j + 1) * n_bits + b] = lanes[1];
    }
  }
  for (; j < n_sym; ++j) {
    double d0[16];
    double d1[16];
    for (std::size_t b = 0; b < n_bits; ++b) {
      d0[b] = 1e300;
      d1[b] = 1e300;
    }
    const double s_re = syms[j].real();
    const double s_im = syms[j].imag();
    for (std::size_t idx = 0; idx < n_points; ++idx) {
      const double dr = s_re - points[idx].real();
      const double di = s_im - points[idx].imag();
      const double d = dr * dr + di * di;
      for (std::size_t b = 0; b < n_bits; ++b) {
        if ((idx >> (n_bits - 1 - b)) & 1u) {
          if (d < d1[b]) d1[b] = d;
        } else {
          if (d < d0[b]) d0[b] = d;
        }
      }
    }
    const double nv = noise_var[j * nv_stride];
    for (std::size_t b = 0; b < n_bits; ++b) {
      out[j * n_bits + b] = (d1[b] - d0[b]) / nv;
    }
  }
}

}  // namespace neon

const Kernels& neon_kernels() {
  static const Kernels table = {
      "neon",
      neon::fft_stage,
      neon::fft_last_stage,
      neon::fft_sr_gather,
      neon::fft_sr_combine,
      neon::fft_sr_last,
      neon::fir_cr,
      neon::fir_cc,
      neon::cvec_add,
      neon::cvec_mul,
      neon::cvec_scale,
      neon::rvec_add,
      scalar_kernels().map_lut,
      neon::demap_soft,
  };
  return table;
}

}  // namespace ofdm::simd

#endif  // __aarch64__
