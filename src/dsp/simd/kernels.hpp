// The vectorized kernel table behind the runtime-dispatch layer.
//
// Every entry is a hot inner loop from the scalar datapath, restated as
// a free function over raw pointers so a tier (scalar / SSE2 / AVX2 /
// NEON) can supply its own implementation. The contract for every
// non-scalar tier is *bit-reproducibility on finite inputs*: a kernel
// may reorder independent element lanes but must perform, per element,
// exactly the scalar sequence of IEEE-754 operations (no FMA fusion, no
// reassociated reductions). Reductions therefore vectorize across
// *outputs* (each lane accumulates its own output in scalar order),
// never across the reduction axis.
//
// The one sanctioned exception: building with OFDM_SIMD_ALLOW_FMA=ON
// lets the x86 tiers contract mul+add pairs into FMAs. That changes
// low-order bits, and the golden-trace digests must be reblessed — see
// DESIGN.md §13 for the policy.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace ofdm::simd {

struct Kernels {
  /// Human-readable tier name ("scalar", "sse2", "avx2", "neon").
  const char* name;

  /// One radix-2 DIT stage (len < n): for every block of `len` samples,
  /// half = len/2 butterflies
  ///   t = d[base+k+half] * tw[k];  d[base+k] = u + t;  d[base+k+half] = u - t;
  /// with a contiguous per-stage twiddle table tw[0..half).
  void (*fft_stage)(cplx* d, const cplx* tw, std::size_t n,
                    std::size_t len);

  /// The final stage (single block, half = n/2) with the output scale
  /// folded into the butterfly writes: (u ± t) * scale. scale == 1.0
  /// must skip the multiply entirely (matching the scalar reference).
  void (*fft_last_stage)(cplx* d, const cplx* tw, std::size_t half,
                         double scale);

  /// FIR with real taps over complex samples:
  ///   out[i] = sum_{t=0..n_taps-1} x[i + n_taps - 1 - t] * taps[t]
  /// accumulated in ascending t — the scalar delay-line order. `x` must
  /// hold n_out + n_taps - 1 samples (history first, chronological).
  /// out must not alias x.
  void (*fir_cr)(const cplx* x, const double* taps, std::size_t n_taps,
                 cplx* out, std::size_t n_out);

  /// Same window convolution with complex taps (multipath tapped delay
  /// lines).
  void (*fir_cc)(const cplx* x, const cplx* taps, std::size_t n_taps,
                 cplx* out, std::size_t n_out);

  /// out[i] = a[i] + b[i]. out may alias a or b exactly.
  void (*cvec_add)(const cplx* a, const cplx* b, cplx* out,
                   std::size_t n);

  /// out[i] = a[i] * b[i] (complex). out may alias a or b exactly.
  void (*cvec_mul)(const cplx* a, const cplx* b, cplx* out,
                   std::size_t n);

  /// out[i] = in[i] * s. out may alias in exactly.
  void (*cvec_scale)(const cplx* in, double s, cplx* out, std::size_t n);

  /// a[i] += b[i] over raw doubles (fading-channel phase advance).
  void (*rvec_add)(double* a, const double* b, std::size_t n);

  /// Constellation mapping: `bits` holds n_sym * bps unpacked bits (one
  /// per byte, MSB of each symbol first); out[j] = lut[index_j] where
  /// index_j folds the j-th group of bps bits MSB-first. bps in [1, 16];
  /// lut has 2^bps entries.
  void (*map_lut)(const std::uint8_t* bits, std::size_t n_sym,
                  std::size_t bps, const cplx* lut, cplx* out);
};

/// The scalar reference table (always available, every platform).
const Kernels& scalar_kernels();

#if defined(__x86_64__) || defined(_M_X64)
/// SSE2 baseline tier (always available on x86-64).
const Kernels& sse2_kernels();
/// AVX2 tier; only call through if the CPU reports AVX2.
const Kernels& avx2_kernels();
#endif

#if defined(__aarch64__)
/// NEON tier (always available on AArch64).
const Kernels& neon_kernels();
#endif

}  // namespace ofdm::simd
