// The vectorized kernel table behind the runtime-dispatch layer.
//
// Every entry is a hot inner loop from the scalar datapath, restated as
// a free function over raw pointers so a tier (scalar / SSE2 / AVX2 /
// NEON) can supply its own implementation. The contract for every
// non-scalar tier is *bit-reproducibility on finite inputs*: a kernel
// may reorder independent element lanes but must perform, per element,
// exactly the scalar sequence of IEEE-754 operations (no FMA fusion, no
// reassociated reductions). Reductions therefore vectorize across
// *outputs* (each lane accumulates its own output in scalar order),
// never across the reduction axis.
//
// The one sanctioned exception: building with OFDM_SIMD_ALLOW_FMA=ON
// lets the x86 tiers contract mul+add pairs into FMAs. That changes
// low-order bits, and the golden-trace digests must be reblessed — see
// DESIGN.md §13 for the policy.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace ofdm::simd {

struct Kernels {
  /// Human-readable tier name ("scalar", "sse2", "avx2", "neon").
  const char* name;

  /// One radix-2 DIT stage (len < n): for every block of `len` samples,
  /// half = len/2 butterflies
  ///   t = d[base+k+half] * tw[k];  d[base+k] = u + t;  d[base+k+half] = u - t;
  /// with a contiguous per-stage twiddle table tw[0..half).
  void (*fft_stage)(cplx* d, const cplx* tw, std::size_t n,
                    std::size_t len);

  /// The final stage (single block, half = n/2) with the output scale
  /// folded into the butterfly writes: (u ± t) * scale. scale == 1.0
  /// must skip the multiply entirely (matching the scalar reference).
  void (*fft_last_stage)(cplx* d, const cplx* tw, std::size_t half,
                         double scale);

  /// Split-radix fused first pass: gather the mixed digit-reversal
  /// permutation out[i] = in[perm[i]] and apply the trivial-twiddle
  /// base butterflies in the same sweep (this is what retires the old
  /// scalar bit-reversal scatter loop). `quads` lists the output
  /// offsets of 4-point DFT units — gathered input order (x0, x2, x1,
  /// x3) of the unit's sub-signal — and `pairs` the offsets of 2-point
  /// units. `inverse` flips the sign of the ±j rotation inside the
  /// 4-point units (a component swap + sign flip: exact, so forward
  /// and inverse stay bit-reproducible). in must not alias out.
  void (*fft_sr_gather)(const cplx* in, cplx* out,
                        const std::uint32_t* perm,
                        const std::uint32_t* quads, std::size_t n_quads,
                        const std::uint32_t* pairs, std::size_t n_pairs,
                        bool inverse);

  /// One split-radix combine level over every block offset in `offs`.
  /// A block of size 4*n4 at offset off holds U = d[off .. off+2*n4)
  /// (the half-size sub-DFT) and Z / Z' = the two quarter-size sub-DFTs
  /// at off+2*n4 / off+3*n4. Twiddles are laid out as two contiguous
  /// planes per level: tw[j] = W^j and tw[n4 + j] = W^{3j}, W =
  /// e^{-2πi/(4*n4)} (conjugated table for the inverse). Per j:
  ///   t1 = Z[j]*tw[j]; t3 = Z'[j]*tw[n4+j];
  ///   d[off+j]      = U[j] + (t1+t3);   d[off+2*n4+j] = U[j] - (t1+t3);
  ///   d[off+n4+j]   = U[n4+j] + r;      d[off+3*n4+j] = U[n4+j] - r;
  /// with r = ∓j*(t1-t3) (forward/inverse). The plan only emits levels
  /// of size >= 8, so n4 is always a power of two >= 2 (tiers may pair
  /// lanes without a tail loop).
  void (*fft_sr_combine)(cplx* d, const cplx* tw,
                         const std::uint32_t* offs, std::size_t n_offs,
                         std::size_t n4, bool inverse);

  /// The final combine level (single block covering the whole array,
  /// n4 = n/4) with the output scale folded into the four butterfly
  /// writes. Reads src, writes dst at the same indices; src == dst is
  /// the in-place case and src != dst lets an in-place *transform*
  /// finish out of its staging buffer without an extra copy pass.
  /// scale == 1.0 must skip the multiply entirely.
  void (*fft_sr_last)(const cplx* src, cplx* dst, const cplx* tw,
                      std::size_t n4, bool inverse, double scale);

  /// FIR with real taps over complex samples:
  ///   out[i] = sum_{t=0..n_taps-1} x[i + n_taps - 1 - t] * taps[t]
  /// accumulated in ascending t — the scalar delay-line order. `x` must
  /// hold n_out + n_taps - 1 samples (history first, chronological).
  /// out must not alias x.
  void (*fir_cr)(const cplx* x, const double* taps, std::size_t n_taps,
                 cplx* out, std::size_t n_out);

  /// Same window convolution with complex taps (multipath tapped delay
  /// lines).
  void (*fir_cc)(const cplx* x, const cplx* taps, std::size_t n_taps,
                 cplx* out, std::size_t n_out);

  /// out[i] = a[i] + b[i]. out may alias a or b exactly.
  void (*cvec_add)(const cplx* a, const cplx* b, cplx* out,
                   std::size_t n);

  /// out[i] = a[i] * b[i] (complex). out may alias a or b exactly.
  void (*cvec_mul)(const cplx* a, const cplx* b, cplx* out,
                   std::size_t n);

  /// out[i] = in[i] * s. out may alias in exactly.
  void (*cvec_scale)(const cplx* in, double s, cplx* out, std::size_t n);

  /// a[i] += b[i] over raw doubles (fading-channel phase advance).
  void (*rvec_add)(double* a, const double* b, std::size_t n);

  /// Constellation mapping: `bits` holds n_sym * bps unpacked bits (one
  /// per byte, MSB of each symbol first); out[j] = lut[index_j] where
  /// index_j folds the j-th group of bps bits MSB-first. bps in [1, 16];
  /// lut has 2^bps entries.
  void (*map_lut)(const std::uint8_t* bits, std::size_t n_sym,
                  std::size_t bps, const cplx* lut, cplx* out);

  /// Max-log soft demap. For symbol j and bit b (MSB-first over n_bits):
  ///   out[j * n_bits + b] = (d1 - d0) / noise_var[j * nv_stride]
  /// where d_c is the minimum squared distance dr*dr + di*di (dr/di the
  /// component differences against points[idx]) over point indices whose
  /// bit b equals c, scanned in ascending idx order with the scalar
  /// `d < best` update. nv_stride is 0 (one variance for the whole
  /// batch) or 1 (per-symbol variance, the per-tone equalizer weighting).
  /// n_bits in [1, 16]; n_points == 1 << n_bits. Tiers vectorize across
  /// symbols only — the per-point min scan keeps scalar order, and the
  /// final subtract/divide is per-lane IEEE-exact.
  void (*demap_soft)(const cplx* syms, std::size_t n_sym,
                     const cplx* points, std::size_t n_points,
                     std::size_t n_bits, const double* noise_var,
                     std::size_t nv_stride, double* out);
};

/// The scalar reference table (always available, every platform).
const Kernels& scalar_kernels();

#if defined(__x86_64__) || defined(_M_X64)
/// SSE2 baseline tier (always available on x86-64).
const Kernels& sse2_kernels();
/// AVX2 tier; only call through if the CPU reports AVX2.
const Kernels& avx2_kernels();
#endif

#if defined(__aarch64__)
/// NEON tier (always available on AArch64).
const Kernels& neon_kernels();
#endif

}  // namespace ofdm::simd
