// Runtime tier selection for the SIMD kernel table.
//
// The tier is chosen exactly once, at first use: the `OFDM_SIMD`
// environment variable wins if set ("scalar", "sse2", "avx2", "neon",
// or "auto"), otherwise the best tier the CPU supports is picked. All
// datapath code funnels through `kernels()`, so an A/B run is just
// `OFDM_SIMD=scalar ./bench_e5` against the default.
#pragma once

#include <string>

#include "dsp/simd/kernels.hpp"

namespace ofdm::simd {

enum class Tier {
  kScalar,
  kSse2,
  kAvx2,
  kNeon,
};

/// The active kernel table. First call resolves OFDM_SIMD + CPU
/// features; later calls are a single relaxed atomic load.
const Kernels& kernels();

/// The active tier (resolves on first use, like kernels()).
Tier active_tier();

/// "scalar" / "sse2" / "avx2" / "neon".
std::string tier_name(Tier tier);

/// Override the dispatch decision (benches and the digest-equivalence
/// test use this to pit tiers against each other). Requesting a tier
/// the CPU or build does not support falls back to the best supported
/// tier at or below the request; returns the tier actually installed.
Tier force_tier(Tier tier);

/// Best tier this build + CPU supports (what auto-detection picks).
Tier best_supported_tier();

}  // namespace ofdm::simd
