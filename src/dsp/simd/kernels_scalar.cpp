// Scalar reference tier. Every other tier must be bit-identical to
// this file on finite inputs; these loops are deliberately written as
// the plainest possible statement of each kernel's contract.
//
// Complex multiplies are spelled out as the naive (ac - bd, ad + bc)
// form. For finite values this is exactly what libstdc++'s
// std::complex<double> operator* computes (the Annex-G __muldc3
// recovery path only triggers on NaN results), so the datapath's bits
// do not move when a call site switches from operator* to a kernel.
#include <cstddef>
#include <cstdint>

#include "dsp/simd/kernels.hpp"

namespace ofdm::simd {
namespace scalar {

inline cplx cmul(const cplx& a, const cplx& b) {
  const double ar = a.real(), ai = a.imag();
  const double br = b.real(), bi = b.imag();
  return {ar * br - ai * bi, ar * bi + ai * br};
}

void fft_stage(cplx* d, const cplx* tw, std::size_t n,
               std::size_t len) {
  const std::size_t half = len / 2;
  for (std::size_t base = 0; base < n; base += len) {
    cplx* lo = d + base;
    cplx* hi = lo + half;
    for (std::size_t k = 0; k < half; ++k) {
      const cplx t = cmul(hi[k], tw[k]);
      const cplx u = lo[k];
      lo[k] = u + t;
      hi[k] = u - t;
    }
  }
}

void fft_last_stage(cplx* d, const cplx* tw, std::size_t half,
                    double scale) {
  cplx* lo = d;
  cplx* hi = d + half;
  if (scale == 1.0) {
    for (std::size_t k = 0; k < half; ++k) {
      const cplx t = cmul(hi[k], tw[k]);
      const cplx u = lo[k];
      lo[k] = u + t;
      hi[k] = u - t;
    }
    return;
  }
  for (std::size_t k = 0; k < half; ++k) {
    const cplx t = cmul(hi[k], tw[k]);
    const cplx u = lo[k];
    lo[k] = (u + t) * scale;
    hi[k] = (u - t) * scale;
  }
}

/// ∓j * v: (v.im, -v.re) forward, (-v.im, v.re) inverse. A component
/// swap plus a sign flip — exact in IEEE-754, so the split-radix
/// butterflies need no separate inverse twiddle trick for the ±j legs.
inline cplx rot90(const cplx& v, bool inverse) {
  return inverse ? cplx{-v.imag(), v.real()} : cplx{v.imag(), -v.real()};
}

void fft_sr_gather(const cplx* in, cplx* out, const std::uint32_t* perm,
                   const std::uint32_t* quads, std::size_t n_quads,
                   const std::uint32_t* pairs, std::size_t n_pairs,
                   bool inverse) {
  for (std::size_t q = 0; q < n_quads; ++q) {
    const std::size_t p = quads[q];
    const cplx g0 = in[perm[p]];
    const cplx g1 = in[perm[p + 1]];
    const cplx g2 = in[perm[p + 2]];
    const cplx g3 = in[perm[p + 3]];
    const cplx e0 = g0 + g1;
    const cplx e1 = g0 - g1;
    const cplx ts = g2 + g3;
    const cplx td = rot90(g2 - g3, inverse);
    out[p] = e0 + ts;
    out[p + 2] = e0 - ts;
    out[p + 1] = e1 + td;
    out[p + 3] = e1 - td;
  }
  for (std::size_t r = 0; r < n_pairs; ++r) {
    const std::size_t p = pairs[r];
    const cplx g0 = in[perm[p]];
    const cplx g1 = in[perm[p + 1]];
    out[p] = g0 + g1;
    out[p + 1] = g0 - g1;
  }
}

void fft_sr_combine(cplx* d, const cplx* tw, const std::uint32_t* offs,
                    std::size_t n_offs, std::size_t n4, bool inverse) {
  for (std::size_t b = 0; b < n_offs; ++b) {
    cplx* const u0 = d + offs[b];
    cplx* const u1 = u0 + n4;
    cplx* const z = u0 + 2 * n4;
    cplx* const zp = u0 + 3 * n4;
    for (std::size_t j = 0; j < n4; ++j) {
      const cplx t1 = cmul(z[j], tw[j]);
      const cplx t3 = cmul(zp[j], tw[n4 + j]);
      const cplx ts = t1 + t3;
      const cplx td = rot90(t1 - t3, inverse);
      const cplx a = u0[j];
      const cplx c = u1[j];
      u0[j] = a + ts;
      z[j] = a - ts;
      u1[j] = c + td;
      zp[j] = c - td;
    }
  }
}

void fft_sr_last(const cplx* src, cplx* dst, const cplx* tw,
                 std::size_t n4, bool inverse, double scale) {
  const cplx* const u0 = src;
  const cplx* const u1 = src + n4;
  const cplx* const z = src + 2 * n4;
  const cplx* const zp = src + 3 * n4;
  if (scale == 1.0) {
    for (std::size_t j = 0; j < n4; ++j) {
      const cplx t1 = cmul(z[j], tw[j]);
      const cplx t3 = cmul(zp[j], tw[n4 + j]);
      const cplx ts = t1 + t3;
      const cplx td = rot90(t1 - t3, inverse);
      const cplx a = u0[j];
      const cplx c = u1[j];
      dst[j] = a + ts;
      dst[2 * n4 + j] = a - ts;
      dst[n4 + j] = c + td;
      dst[3 * n4 + j] = c - td;
    }
    return;
  }
  for (std::size_t j = 0; j < n4; ++j) {
    const cplx t1 = cmul(z[j], tw[j]);
    const cplx t3 = cmul(zp[j], tw[n4 + j]);
    const cplx ts = t1 + t3;
    const cplx td = rot90(t1 - t3, inverse);
    const cplx a = u0[j];
    const cplx c = u1[j];
    dst[j] = (a + ts) * scale;
    dst[2 * n4 + j] = (a - ts) * scale;
    dst[n4 + j] = (c + td) * scale;
    dst[3 * n4 + j] = (c - td) * scale;
  }
}

void fir_cr(const cplx* x, const double* taps, std::size_t n_taps,
            cplx* out, std::size_t n_out) {
  for (std::size_t i = 0; i < n_out; ++i) {
    const cplx* w = x + i + n_taps - 1;
    double acc_re = 0.0, acc_im = 0.0;
    for (std::size_t t = 0; t < n_taps; ++t) {
      const cplx& s = w[-static_cast<std::ptrdiff_t>(t)];
      acc_re += s.real() * taps[t];
      acc_im += s.imag() * taps[t];
    }
    out[i] = {acc_re, acc_im};
  }
}

void fir_cc(const cplx* x, const cplx* taps, std::size_t n_taps,
            cplx* out, std::size_t n_out) {
  for (std::size_t i = 0; i < n_out; ++i) {
    const cplx* w = x + i + n_taps - 1;
    double acc_re = 0.0, acc_im = 0.0;
    for (std::size_t t = 0; t < n_taps; ++t) {
      const cplx& s = w[-static_cast<std::ptrdiff_t>(t)];
      const cplx p = cmul(s, taps[t]);
      acc_re += p.real();
      acc_im += p.imag();
    }
    out[i] = {acc_re, acc_im};
  }
}

void cvec_add(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void cvec_mul(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = cmul(a[i], b[i]);
}

void cvec_scale(const cplx* in, double s, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = {in[i].real() * s, in[i].imag() * s};
  }
}

void rvec_add(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
}

void map_lut(const std::uint8_t* bits, std::size_t n_sym,
             std::size_t bps, const cplx* lut, cplx* out) {
  for (std::size_t j = 0; j < n_sym; ++j) {
    std::size_t index = 0;
    const std::uint8_t* g = bits + j * bps;
    for (std::size_t b = 0; b < bps; ++b) {
      index = (index << 1) | (g[b] & 1u);
    }
    out[j] = lut[index];
  }
}

void demap_soft(const cplx* syms, std::size_t n_sym, const cplx* points,
                std::size_t n_points, std::size_t n_bits,
                const double* noise_var, std::size_t nv_stride,
                double* out) {
  for (std::size_t j = 0; j < n_sym; ++j) {
    double d0[16];
    double d1[16];
    for (std::size_t b = 0; b < n_bits; ++b) {
      d0[b] = 1e300;
      d1[b] = 1e300;
    }
    const double s_re = syms[j].real();
    const double s_im = syms[j].imag();
    for (std::size_t idx = 0; idx < n_points; ++idx) {
      const double dr = s_re - points[idx].real();
      const double di = s_im - points[idx].imag();
      const double d = dr * dr + di * di;
      for (std::size_t b = 0; b < n_bits; ++b) {
        if ((idx >> (n_bits - 1 - b)) & 1u) {
          if (d < d1[b]) d1[b] = d;
        } else {
          if (d < d0[b]) d0[b] = d;
        }
      }
    }
    const double nv = noise_var[j * nv_stride];
    double* o = out + j * n_bits;
    for (std::size_t b = 0; b < n_bits; ++b) {
      o[b] = (d1[b] - d0[b]) / nv;
    }
  }
}

}  // namespace scalar

const Kernels& scalar_kernels() {
  static const Kernels table = {
      "scalar",
      scalar::fft_stage,
      scalar::fft_last_stage,
      scalar::fft_sr_gather,
      scalar::fft_sr_combine,
      scalar::fft_sr_last,
      scalar::fir_cr,
      scalar::fir_cc,
      scalar::cvec_add,
      scalar::cvec_mul,
      scalar::cvec_scale,
      scalar::rvec_add,
      scalar::map_lut,
      scalar::demap_soft,
  };
  return table;
}

}  // namespace ofdm::simd
