#include "dsp/window.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ofdm::dsp {

rvec make_window(WindowType type, std::size_t n) {
  OFDM_REQUIRE(n >= 1, "make_window: n must be >= 1");
  rvec w(n, 1.0);
  const double denom = static_cast<double>(n);  // periodic window
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowType::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = kTwoPi * static_cast<double>(i) / denom;
        w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
      }
      break;
  }
  return w;
}

double window_power(std::span<const double> w) {
  double acc = 0.0;
  for (double v : w) acc += v * v;
  return acc;
}

rvec raised_cosine_ramp(std::size_t ramp) {
  rvec r(ramp);
  for (std::size_t i = 0; i < ramp; ++i) {
    // Sampled so that r[0] > 0 and the complementary falling ramp
    // (1 - r[i]) sums with it to exactly 1 at every overlap position.
    const double t = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(ramp);
    r[i] = 0.5 * (1.0 - std::cos(kPi * t));
  }
  return r;
}

void apply_window(std::span<cplx> x, std::span<const double> w) {
  OFDM_REQUIRE_DIM(x.size() == w.size(),
                   "apply_window: signal/window size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= w[i];
}

}  // namespace ofdm::dsp
