#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace ofdm::dsp {

double Psd::total_power() const {
  double acc = 0.0;
  for (double v : power) acc += v;
  return acc;
}

double Psd::band_power(double f_lo, double f_hi) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (freq[i] >= f_lo && freq[i] <= f_hi) acc += power[i];
  }
  return acc;
}

double Psd::peak_in_band(double f_lo, double f_hi) const {
  double peak = 0.0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (freq[i] >= f_lo && freq[i] <= f_hi) peak = std::max(peak, power[i]);
  }
  return peak;
}

Psd welch_psd(std::span<const cplx> x, const WelchConfig& cfg) {
  OFDM_REQUIRE(cfg.segment >= 2, "welch_psd: segment must be >= 2");
  OFDM_REQUIRE(cfg.overlap >= 0.0 && cfg.overlap < 1.0,
               "welch_psd: overlap must be in [0, 1)");
  OFDM_REQUIRE_DIM(x.size() >= cfg.segment,
                   "welch_psd: signal shorter than one segment");

  const std::size_t seg = cfg.segment;
  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(seg) * (1.0 - cfg.overlap))));
  const rvec w = make_window(cfg.window, seg);
  const double norm = window_power(w) * static_cast<double>(seg);

  // Per-call construction is fine: the twiddle/permutation tables come
  // out of the process-wide plan cache, so repeated estimates at the
  // same segment size rebuild nothing.
  Fft fft(seg);
  // DMT/powerline captures are exactly real (imaginary lanes bitwise
  // 0.0); a real window keeps them real, so the half-size real-input
  // plan kind applies. Any complex content falls back to the full FFT.
  bool real_input = true;
  for (const cplx& v : x) {
    if (v.imag() != 0.0) {
      real_input = false;
      break;
    }
  }
  cvec buf(seg);
  cvec spec(seg);
  rvec acc(seg, 0.0);
  std::size_t count = 0;
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    for (std::size_t i = 0; i < seg; ++i) buf[i] = x[start + i] * w[i];
    if (real_input) {
      fft.forward_real(buf, spec);
    } else {
      fft.forward(buf, spec);
    }
    for (std::size_t i = 0; i < seg; ++i) acc[i] += std::norm(spec[i]);
    ++count;
  }

  Psd psd;
  psd.freq.resize(seg);
  psd.power.resize(seg);
  const double df = cfg.sample_rate / static_cast<double>(seg);
  const std::size_t half = seg / 2;  // ifftshift offset for even seg
  for (std::size_t i = 0; i < seg; ++i) {
    // DC-centered ordering: bin 0 of the output is -fs/2.
    const std::size_t src = (i + half) % seg;
    psd.freq[i] =
        (static_cast<double>(i) - static_cast<double>(half)) * df;
    psd.power[i] = acc[src] / (static_cast<double>(count) * norm);
  }
  return psd;
}

}  // namespace ofdm::dsp
